"""The DecoMine session: the paper's user-facing API (Figure 8a).

Three calls make up the public surface:

* ``get_pattern_count(pattern)`` — embedding count, edge- or
  vertex-induced.
* ``mine(pattern, process_partial_embedding)`` — stream partial
  embeddings (with their whole-embedding counts) to a UDF, guaranteeing
  the **completeness** and **coverage** properties of section 4.2.
* ``materialize(pe, num)`` — expand a partial embedding into up to
  ``num`` whole embeddings.

plus label constraints (section 7.5) via ``count_with_constraints``.

The session owns the graph profile, the cost model, and a plan cache; all
algorithm selection (cutting sets, matching orders, PLR, decomposition
versus direct fallback) is the compiler's responsibility — users never see
it, which is the paper's central usability claim.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, Sequence

from repro.api.messages import MiningRequest, MiningResponse
from repro.compiler.batch import compile_batch
from repro.compiler.pipeline import CompiledPlan, compile_pattern
from repro.compiler.plancache import PlanCache, plan_key
from repro.compiler.search import SearchOptions
from repro.compiler.specs import Constraint, DecompSpec, DirectSpec
from repro.costmodel import CostModel, CostProfile, get_model, profile_graph
from repro.exceptions import PatternError, ReproError
from repro.graph.csr import CSRGraph
from repro.graph.transform import orient
from repro.observe.calibration import calibrating, record_plan_execution
from repro.observe.ledger import graph_fingerprint, new_run_id, note_phase
from repro.observe.trace import span
from repro.patterns.conversion import edge_induced_requirements
from repro.patterns.isomorphism import automorphisms, canonical_code
from repro.patterns.pattern import Pattern
from repro.runtime.context import ExecutionContext
from repro.runtime.engine import EngineOptions, ExecutionResult, execute_plan
from repro.runtime.partial_embedding import PartialEmbedding, materialize
from repro.runtime.supervisor import RunBudget, RunPolicy

__all__ = ["DecoMine"]

#: Pre-redesign ``DecoMine.__init__`` keywords, removed after their
#: one-release deprecation window, mapped to the current spelling.
_REMOVED_INIT_KWARGS = {
    "workers": "engine=EngineOptions(workers=...)",
    "executor": "engine=EngineOptions(executor=...)",
}


def _reject_removed_init_kwargs(removed: dict) -> None:
    known = {k: v for k, v in _REMOVED_INIT_KWARGS.items() if k in removed}
    if known:
        detail = "; ".join(
            f"{name}= was removed, pass {replacement}"
            for name, replacement in known.items()
        )
        raise ReproError(f"DecoMine() no longer accepts these keywords: {detail}")
    name = next(iter(removed))
    raise TypeError(
        f"DecoMine() got an unexpected keyword argument {name!r}"
    )

ProcessPartialEmbedding = Callable[[PartialEmbedding], None]


class DecoMine:
    """A mining session bound to one input graph.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.csr.CSRGraph`.
    cost_model:
        ``"approx_mining"`` (default), ``"locality"``, ``"automine"``, or
        a :class:`~repro.costmodel.CostModel` instance.
    engine:
        An :class:`~repro.runtime.engine.EngineOptions` bundle applied
        to every counting execution: worker count, chunking, executor
        choice, set-op cache policy, fault plan.  (The pre-redesign
        ``workers=``/``executor=`` keywords are gone; passing them
        raises :class:`~repro.exceptions.ReproError` naming the
        replacement.)
    plan_cache:
        Optional persistent :class:`~repro.compiler.plancache.PlanCache`
        (or a directory path) shared with other sessions and the
        ``repro serve`` daemon: compiled plans are looked up by content
        key before any profiling happens, so a warm pattern skips
        profile+compile+search entirely.  None (the default) keeps the
        session's in-memory cache only.
    search_options:
        Caps/toggles for the compiler's algorithm search.
    profile:
        Pre-computed :class:`~repro.costmodel.CostProfile`; profiled on
        first use otherwise ("amortized with multiple applications", §8.2).
    run_policy:
        A :class:`~repro.runtime.supervisor.RunPolicy` (or bare
        :class:`~repro.runtime.supervisor.RunBudget`) applied to every
        counting execution: retry/backoff caps, deadlines, and an
        optional checkpoint for killed-run resume.  ``last_result``
        keeps the most recent :class:`ExecutionResult`, whose
        ``failures`` list and ``metrics`` view surface what the
        supervisor had to do.

    When a calibration recorder is active (``observe.calibrate()``),
    every counting execution logs its per-model cost estimate against
    measured seconds for the prediction-quality report.
    """

    def __init__(
        self,
        graph: CSRGraph,
        cost_model: CostModel | str = "approx_mining",
        search_options: SearchOptions | None = None,
        profile: CostProfile | None = None,
        profile_seed: int = 0,
        run_policy: RunPolicy | RunBudget | None = None,
        *,
        engine: EngineOptions | None = None,
        plan_cache: "PlanCache | str | None" = None,
        **removed,
    ) -> None:
        if removed:
            _reject_removed_init_kwargs(removed)
        self.graph = graph
        self.model = (
            get_model(cost_model) if isinstance(cost_model, str) else cost_model
        )
        self.engine_options = engine if engine is not None else EngineOptions()
        self.options = search_options or SearchOptions()
        if isinstance(run_policy, RunBudget):
            run_policy = RunPolicy(budget=run_policy)
        self.run_policy = run_policy
        if plan_cache is None or isinstance(plan_cache, PlanCache):
            self.plan_cache = plan_cache
        else:
            self.plan_cache = PlanCache(plan_cache)
        #: The most recent :class:`MiningResponse` (every public entry
        #: point routes through :meth:`submit`).
        self.last_response: MiningResponse | None = None
        #: The most recent :class:`~repro.runtime.batchrun.BatchResult`
        #: from :meth:`submit_batch` (node results, sharing report).
        self.last_batch_result = None
        self._last_result: ExecutionResult | None = None
        #: Provenance of the most recent ``plan_for``: the persistent
        #: cache key and whether any cache (in-memory or on-disk)
        #: supplied the plan.
        self.last_plan_key: str = ""
        self.last_plan_cache_hit: bool = False
        self._profile = profile
        self._profile_seed = profile_seed
        self._plan_cache: dict = {}

    @property
    def last_result(self) -> ExecutionResult | None:
        """The most recent raw :class:`ExecutionResult`.

        Alias kept from the pre-request/response API;
        :attr:`last_response` is the richer view.
        """
        return self._last_result

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def profile(self) -> CostProfile:
        """The graph profile, computed lazily on first use."""
        if self._profile is None:
            started = time.perf_counter()
            with span("profile", vertices=self.graph.num_vertices):
                self._profile = profile_graph(
                    self.graph, seed=self._profile_seed
                )
            note_phase("profile", time.perf_counter() - started)
        return self._profile

    # ------------------------------------------------------------------
    # Plan management
    # ------------------------------------------------------------------
    def plan_for(
        self,
        pattern: Pattern,
        mode: str = "count",
        induced: bool = False,
        constraints: tuple[Constraint, ...] = (),
        options: EngineOptions | None = None,
    ) -> CompiledPlan:
        """Compile (or fetch from cache) the best plan for a pattern.

        Consults the in-memory cache first, then the persistent
        :attr:`plan_cache` when one is attached (storing cold compiles
        back into it).  ``last_plan_key``/``last_plan_cache_hit`` record
        the provenance of the returned plan.
        """
        plan, key, hit = self._plan_with_provenance(
            pattern, mode, induced, tuple(constraints),
            options if options is not None else self.engine_options,
        )
        self.last_plan_key = key
        self.last_plan_cache_hit = hit
        return plan

    def _plan_with_provenance(
        self,
        pattern: Pattern,
        mode: str,
        induced: bool,
        constraints: tuple[Constraint, ...],
        options: EngineOptions,
        events: list | None = None,
    ) -> tuple[CompiledPlan, str, bool]:
        orientation = "none"
        if mode == "count" and not constraints:
            # Orientation applies to counting plans only — relabeled ids
            # would leak into emit UDFs and constraint predicates — so
            # emit/constrained plans compile unoriented and the engine
            # strips the option at execution time (see _execute).
            orientation = options.orientation
            memkey = (canonical_code(pattern), mode, induced, orientation)
        else:
            memkey = (pattern, mode, induced, constraints)
        key = plan_key(
            pattern,
            graph_fingerprint=graph_fingerprint(self.graph),
            model_name=getattr(self.model, "name", str(self.model)),
            mode=mode,
            induced=induced,
            constraints=constraints,
            options=self.options,
            orientation=orientation,
        )
        plan = self._plan_cache.get(memkey)
        hit = plan is not None
        if plan is None:
            if self.plan_cache is not None:
                plan, hit = self.plan_cache.compile_cached(
                    pattern,
                    lambda: self._profile_for(orientation),
                    self.model,
                    graph_fingerprint=graph_fingerprint(self.graph),
                    mode=mode,
                    induced=induced,
                    constraints=constraints,
                    options=self.options,
                    orientation=orientation,
                )
            else:
                plan = compile_pattern(
                    pattern,
                    self._profile_for(orientation),
                    self.model,
                    mode=mode,
                    induced=induced,
                    constraints=constraints,
                    options=self.options,
                    orientation=orientation,
                )
            self._plan_cache[memkey] = plan
        if events is not None:
            events.append((key, hit))
        return plan, key, hit

    def _plan(self, pattern, mode, induced, constraints, options, events):
        plan, _key, _hit = self._plan_with_provenance(
            pattern, mode, induced, constraints, options, events
        )
        return plan

    def _profile_for(self, orientation: str) -> CostProfile:
        """The graph profile, with orientation stats attached on demand.

        Passed to the persistent cache as the *profile factory*: only
        invoked on a cache miss, which is what lets a warm request skip
        graph profiling entirely.
        """
        if orientation != "none":
            self._attach_orientation_stats(orientation)
        return self.profile

    def _attach_orientation_stats(self, orientation: str) -> None:
        """Feed measured out-degree statistics to the cost models.

        ``orient`` memoizes per (graph, mode), so this shares the
        relabeled copy the engine will execute on; the profile fields
        let the models price oriented candidate sets by out-degree
        instead of the ``avg_degree / 2`` fallback.
        """
        profile = self.profile
        if profile.orientation == orientation:
            return
        oriented = orient(self.graph, orientation)
        profile.orientation = orientation
        profile.avg_out_degree = float(oriented.avg_out_degree)
        profile.max_out_degree = float(oriented.max_out_degree)

    def explain(self, pattern: Pattern, induced: bool = False) -> str:
        """Human-readable description of the plan the compiler selected."""
        return self.plan_for(pattern, induced=induced).describe()

    def explain_json(self, pattern: Pattern, induced: bool = False) -> dict:
        """Machine-readable plan summary (``repro explain --format json``).

        Includes the persistent plan-cache key for this request, whether
        this session got the plan from a cache, and whether a persistent
        entry is currently published under that key.
        """
        plan = self.plan_for(pattern, induced=induced)
        return {
            "pattern": pattern.name or repr(pattern),
            "mode": plan.mode,
            "model": plan.model_name,
            "cost": float(plan.cost),
            "orientation": plan.orientation,
            "aux_plans": len(plan.aux_plans),
            "compile_seconds": float(plan.compile_seconds),
            "plan": plan.describe(),
            "plan_cache": {
                "key": self.last_plan_key,
                "hit": self.last_plan_cache_hit,
                "persistent": (
                    self.plan_cache.contains(self.last_plan_key)
                    if self.plan_cache is not None else False
                ),
                "path": (str(self.plan_cache.path)
                         if self.plan_cache is not None else None),
            },
        }

    # ------------------------------------------------------------------
    # get_pattern_count
    # ------------------------------------------------------------------
    def get_pattern_count(self, pattern: Pattern, induced: bool = False) -> int:
        """Number of embeddings of ``pattern`` in the graph.

        ``induced=False`` counts edge-induced embeddings (the GPM default
        and the semantics pattern decomposition assumes); ``induced=True``
        counts vertex-induced embeddings, computed either directly or by
        converting edge-induced counts of denser patterns — whichever the
        cost model predicts is cheaper (paper section 2.2).
        """
        response = self.submit(
            MiningRequest(pattern=pattern, induced=induced)
        )
        return self._unwrap_count(response)

    # ------------------------------------------------------------------
    # submit: the one entry point every public call routes through
    # ------------------------------------------------------------------
    def submit(
        self,
        request: MiningRequest,
        *,
        process_partial_embedding: "ProcessPartialEmbedding | None" = None,
        predicates: "Sequence[Callable] | None" = None,
    ) -> MiningResponse:
        """Run one :class:`MiningRequest`, returning a :class:`MiningResponse`.

        The same internals serve the library calls
        (``get_pattern_count``/``mine``/``count_with_constraints`` each
        build a request and call this) and the ``repro serve`` daemon.
        Callables cannot live on the frozen request, so the emit UDF
        (``mode="mine"``) and the constraint predicates
        (``mode="constrained"``, one per ``request.constraints`` entry)
        arrive as keyword arguments.

        Invalid requests and failed compilations raise; *incomplete
        executions* (cancelled, unrecovered chunks) return a response
        with ``ok=False`` and ``count=None`` plus the salvage view.
        """
        if not isinstance(request, MiningRequest):
            raise ReproError("submit() takes a MiningRequest")
        if request.mode == "mine" and process_partial_embedding is None:
            raise ReproError("mode='mine' requires process_partial_embedding")
        if request.mode == "constrained":
            if predicates is None or len(predicates) != len(request.constraints):
                raise ReproError(
                    "mode='constrained' requires one predicate per "
                    "constraints entry"
                )
        self._check(request.pattern)
        options = (request.engine if request.engine is not None
                   else self.engine_options)
        events: list[tuple[str, bool]] = []
        started = time.perf_counter()
        result: ExecutionResult | None = None
        if request.mode == "count":
            policy = self._policy_for(request, self.run_policy)
            count, result = self._count_request(request, options, policy,
                                                events)
        elif request.mode == "mine":
            plan = self._plan(request.pattern, "emit", False, (), options,
                              events)
            emitter = self._make_emitter(plan, process_partial_embedding)
            ctx = ExecutionContext(plan.root.num_tables, emit=emitter)
            result = self._execute(plan, ctx, options=options)
            count = result.embedding_count if result.ok else None
        else:
            specs = tuple(
                Constraint(pred=index, vertices=tuple(vertices))
                for index, vertices in enumerate(request.constraints)
            )
            plan = self._plan(request.pattern, "count", False, specs,
                              options, events)
            ctx = ExecutionContext(
                plan.root.num_tables, predicates=list(predicates)
            )
            # Constrained plans run serial and unoriented: predicates
            # observe original vertex ids and close over local state.
            constrained = replace(options, workers=1, orientation="none")
            policy = self._policy_for(request, None)
            result = self._execute(plan, ctx, options=constrained,
                                   policy=policy)
            count = result.raw_count if result.ok else None
        response = MiningResponse(
            request_id=request.request_id or new_run_id(),
            client_id=request.client_id,
            ok=result.ok if result is not None else True,
            count=count,
            raw_count=(result.raw_count if result is not None
                       else int(count or 0)),
            mode=request.mode,
            run_id=result.run_id if result is not None else "",
            plan_key=events[-1][0] if events else "",
            plan_cache_hit=bool(events) and all(hit for _, hit in events),
            seconds=time.perf_counter() - started,
            cancelled=result.cancelled if result is not None else None,
            salvage=result.salvage if result is not None else None,
            metrics=(result.metrics.as_dict() if result is not None else {}),
        )
        self.last_response = response
        return response

    # ------------------------------------------------------------------
    # submit_batch: multi-query DAG execution
    # ------------------------------------------------------------------
    def submit_batch(
        self, requests: Sequence[MiningRequest]
    ) -> list[MiningResponse]:
        """Run a workload of counting requests as one shared-plan DAG.

        The batch compiler (:mod:`repro.compiler.batch`) canonicalizes
        the workload (isomorphic duplicates collapse to one query),
        factors shared subpatterns — shrinkage quotients, vertex-induced
        host conversions — into a DAG enumerated once per distinct
        census, and fuses direct plans through the ``multi.py`` prefix
        trie; :func:`repro.runtime.batchrun.execute_batch` then runs the
        schedule over one shared graph segment and set-op cache.

        All requests must be ``mode="count"`` and share at most one
        engine override; the tightest per-request deadline governs the
        whole batch.  Returns one :class:`MiningResponse` per request,
        in submission order, all stamped with the same ``batch_id``.
        """
        from repro.runtime.batchrun import execute_batch

        requests = list(requests)
        if not requests:
            raise ReproError(
                "submit_batch() needs at least one MiningRequest"
            )
        for request in requests:
            if not isinstance(request, MiningRequest):
                raise ReproError("submit_batch() takes MiningRequests")
            if request.mode != "count":
                raise ReproError(
                    f"batch requests must be mode='count', got "
                    f"{request.mode!r}"
                )
        overrides = {request.engine for request in requests
                     if request.engine is not None}
        if len(overrides) > 1:
            raise ReproError(
                "batch requests must share one engine override (or none)"
            )
        options = overrides.pop() if overrides else self.engine_options
        policy = self.run_policy
        deadlines = [request.deadline_s for request in requests
                     if request.deadline_s is not None]
        if deadlines:
            base = policy if policy is not None else RunPolicy()
            budget = base.budget if base.budget is not None else RunBudget()
            policy = replace(
                base,
                budget=replace(budget, deadline_s=min(deadlines)),
                supervised=True,
            )
        started = time.perf_counter()
        batch_plan = compile_batch(
            self, [(request.pattern, request.induced)
                   for request in requests],
            options,
        )
        result = execute_batch(
            batch_plan, self.graph, options=options, policy=policy,
        )
        self.last_batch_result = result
        seconds = time.perf_counter() - started
        query_of: dict[int, object] = {}
        for query in batch_plan.queries:
            for position in query.members:
                query_of[position] = query
        responses = []
        for position, request in enumerate(requests):
            count = result.counts[position]
            query = query_of[position]
            responses.append(MiningResponse(
                request_id=request.request_id or new_run_id(),
                client_id=request.client_id,
                ok=count is not None,
                count=count,
                raw_count=int(count) if count is not None else 0,
                mode="count",
                run_id=result.batch_id,
                plan_key=query.plan_key,
                plan_cache_hit=query.plan_cache_hit,
                seconds=seconds,
                cancelled=result.cancelled,
                error=result.error if count is None else None,
                batch_id=result.batch_id,
            ))
        if responses:
            self.last_response = responses[-1]
        return responses

    def get_pattern_counts(
        self, patterns: Sequence[Pattern], induced: bool = False
    ) -> list[int]:
        """Batched :meth:`get_pattern_count` over a pattern workload.

        One shared-plan DAG run instead of ``len(patterns)`` sequential
        executions; counts come back in submission order.
        """
        responses = self.submit_batch([
            MiningRequest(pattern=pattern, induced=induced)
            for pattern in patterns
        ])
        counts = []
        for response in responses:
            if response.count is None:
                raise ReproError(
                    f"batch execution incomplete: "
                    f"{response.error or response.cancelled or 'unknown'}"
                )
            counts.append(response.count)
        return counts

    def _unwrap_count(self, response: MiningResponse) -> int:
        if response.count is not None:
            return response.count
        # Incomplete run: re-raise the legacy ExecutionError with the
        # failure summary (embedding_count raises on unrecovered chunks).
        assert self._last_result is not None
        return self._last_result.embedding_count

    def _policy_for(self, request: MiningRequest, base):
        """The run policy for one request: the base plus its deadline."""
        if request.deadline_s is None:
            return base
        policy = base if base is not None else RunPolicy()
        budget = policy.budget if policy.budget is not None else RunBudget()
        return replace(
            policy,
            budget=replace(budget, deadline_s=request.deadline_s),
            supervised=True,
        )

    def _count_request(self, request, options, policy, events):
        pattern = request.pattern
        if pattern.n == 1:
            if pattern.is_labeled:
                count = int(
                    self.graph.vertices_with_label(pattern.labels[0]).size
                )
            else:
                count = self.graph.num_vertices
            return count, None
        if not request.induced:
            plan = self._plan(pattern, "count", False, (), options, events)
            return self._run_count(plan, options, policy)
        return self._vertex_induced_count(pattern, options, policy, events)

    def _vertex_induced_count(self, pattern, options, policy, events):
        if pattern.is_clique and not pattern.is_labeled:
            # A clique's vertex- and edge-induced counts coincide.
            plan = self._plan(pattern, "count", False, (), options, events)
            return self._run_count(plan, options, policy)
        direct_plan = self._plan(pattern, "count", True, (), options, events)
        missing_edges = pattern.n * (pattern.n - 1) // 2 - pattern.num_edges
        if pattern.is_labeled or not (pattern.n <= 5 or missing_edges <= 3):
            # Conversion operates on unlabeled patterns, and its host
            # closure (all same-vertex supergraphs) explodes for large
            # sparse patterns — 2^missing_edges in the worst case.  The
            # direct vertex-induced plan is the paper's option (1).
            return self._run_count(direct_plan, options, policy)
        requirements = edge_induced_requirements(pattern)
        host_plans = [
            self._plan(host, "count", False, (), options, events)
            for host, _ in requirements
        ]
        indirect_cost = sum(plan.cost for plan in host_plans)
        if direct_plan.cost <= indirect_cost:
            return self._run_count(direct_plan, options, policy)
        total = 0
        result = None
        for (host, coefficient), plan in zip(requirements, host_plans):
            count, result = self._run_count(plan, options, policy)
            if count is None:
                return None, result
            total += coefficient * count
        return total, result

    def _run_count(self, plan, options, policy):
        result = self._execute(plan, options=options, policy=policy)
        return (result.embedding_count if result.ok else None), result

    def _execute(
        self,
        plan: CompiledPlan,
        ctx: ExecutionContext | None = None,
        *,
        options: EngineOptions | None = None,
        policy: "RunPolicy | None" = None,
    ) -> ExecutionResult:
        options = options if options is not None else self.engine_options
        # Supervision re-runs chunks, which is only sound for counting
        # accumulators — emit-mode UDF deliveries are not idempotent.
        if plan.mode != "count":
            policy = None
        overrides = {}
        if plan.mode != "count" and options.workers != 1:
            overrides["workers"] = 1
        if options.orientation != "none" and plan.orientation == "none":
            # The plan carries no oriented ops — either it is an
            # emit/constrained plan (relabeled ids would be observable)
            # or the orient pass found nothing to rewrite.  Relabeling
            # alone buys nothing and can hurt, so run on the original.
            overrides["orientation"] = "none"
        if overrides:
            options = replace(options, **overrides)
        result = execute_plan(
            plan, self.graph, ctx=ctx, options=options, policy=policy,
        )
        self._last_result = result
        if plan.mode == "count" and calibrating():
            record_plan_execution(plan, self.profile, result.seconds)
        return result

    # ------------------------------------------------------------------
    # mine / process_partial_embedding
    # ------------------------------------------------------------------
    def mine(
        self,
        pattern: Pattern,
        process_partial_embedding: ProcessPartialEmbedding,
    ) -> int:
        """Stream partial embeddings of ``pattern`` to a UDF.

        Guarantees (section 4.2): **completeness** — every partial
        embedding of a delivered subpattern is delivered; **coverage** —
        the subpatterns jointly cover every pattern vertex.  For direct
        (non-decomposed) plans each whole embedding is delivered once per
        pattern automorphism, preserving completeness.

        Returns the whole-pattern embedding count as a convenience.
        """
        response = self.submit(
            MiningRequest(pattern=pattern, mode="mine"),
            process_partial_embedding=process_partial_embedding,
        )
        return self._unwrap_count(response)

    def _make_emitter(self, plan: CompiledPlan, udf: ProcessPartialEmbedding):
        pattern = plan.pattern
        layouts = plan.info.emit_layouts
        if plan.info.expand_automorphisms:
            auts = automorphisms(pattern)

            def emit(index: int, vertices: tuple[int, ...], count: int) -> None:
                base = dict(zip(layouts[index], vertices))
                for sigma in auts:
                    mapped = tuple(
                        base[sigma[v]] for v in layouts[index]
                    )
                    udf(PartialEmbedding(
                        pattern, index, layouts[index], mapped, count,
                    ))

            return emit

        def emit(index: int, vertices: tuple[int, ...], count: int) -> None:
            udf(PartialEmbedding(pattern, index, layouts[index], vertices, count))

        return emit

    # ------------------------------------------------------------------
    # materialize
    # ------------------------------------------------------------------
    def materialize(self, pe: PartialEmbedding, num: int | None = None):
        """Expand a partial embedding into up to ``num`` whole embeddings.

        Yields complete ``pattern vertex -> graph vertex`` mappings.
        """
        return materialize(self.graph, pe, num)

    # ------------------------------------------------------------------
    # Label constraints (section 7.5)
    # ------------------------------------------------------------------
    def count_with_constraints(
        self,
        pattern: Pattern,
        constraints: Sequence[tuple[Callable, tuple[int, ...]]],
    ) -> int:
        """Count matches satisfying ``F(e) = F1(e1) ∧ ... ∧ Fk(ek)``.

        Each entry is ``(predicate, pattern_vertices)``; the predicate
        receives the graph vertices matched to those pattern vertices.
        The compiler picks a cutting set whose subpatterns can resolve
        every fragment on partially-materialized embeddings, falling back
        to a direct plan when none exists.

        Returns the number of constraint-satisfying *matches* (injective
        homomorphisms): constraints distinguish pattern vertices, so they
        are generally not automorphism-invariant and the embedding-level
        multiplicity division does not apply.
        """
        response = self.submit(
            MiningRequest(
                pattern=pattern,
                mode="constrained",
                constraints=tuple(
                    tuple(int(v) for v in vertices)
                    for _, vertices in constraints
                ),
            ),
            predicates=[predicate for predicate, _ in constraints],
        )
        if response.count is None:
            assert self._last_result is not None
            self._last_result.embedding_count  # raises with the summary
        return response.count

    # ------------------------------------------------------------------
    def _check(self, pattern: Pattern) -> None:
        if not pattern.is_connected:
            raise PatternError("patterns must be connected")
        if pattern.is_labeled and not self.graph.is_labeled:
            raise PatternError("labeled pattern requires a labeled graph")
