"""Shared workload and system factories for the benchmark suite.

Systems and graph profiles are memoized per graph so that — exactly as
the paper does (section 8.2) — profiling and plan compilation are
amortized across the applications measured on one dataset.
"""

from __future__ import annotations

from repro.api.session import DecoMine
from repro.apps.interface import DecoMineMiner
from repro.baselines import (
    Arabesque,
    AutoMineInHouse,
    Escape,
    Fractal,
    GraphPi,
    Pangolin,
    Peregrine,
    RStream,
)
from repro.costmodel import CostProfile, profile_graph
from repro.graph.csr import CSRGraph
from repro.runtime.engine import EngineOptions

__all__ = ["profile_for", "session_for", "make_system", "SYSTEM_NAMES",
           "is_cached_system"]

_PROFILES: dict[int, CostProfile] = {}
_SESSIONS: dict[tuple, DecoMine] = {}
_SYSTEMS: dict[tuple, object] = {}

SYSTEM_NAMES = (
    "decomine",
    "decomine(oriented)",
    "automine",
    "peregrine",
    "graphpi",
    "graphpi(count)",
    "arabesque",
    "rstream",
    "pangolin",
    "fractal",
    "escape",
)


def is_cached_system(name: str) -> bool:
    """True for systems that benefit from warm measurement (they carry
    plan/statistics caches); the enumerate-everything baselines re-do all
    work every run."""
    return name in ("decomine", "decomine(oriented)", "automine",
                    "peregrine", "graphpi", "graphpi(count)", "escape")


def profile_for(graph: CSRGraph) -> CostProfile:
    key = id(graph)
    if key not in _PROFILES:
        _PROFILES[key] = profile_graph(graph)
    return _PROFILES[key]


def session_for(graph: CSRGraph, cost_model: str = "approx_mining",
                workers: int = 1, orientation: str = "none",
                executor: str = "codegen") -> DecoMine:
    key = (id(graph), cost_model, workers, orientation, executor)
    if key not in _SESSIONS:
        _SESSIONS[key] = DecoMine(
            graph, cost_model=cost_model,
            engine=EngineOptions(workers=workers, orientation=orientation,
                                 executor=executor),
            profile=profile_for(graph),
        )
    return _SESSIONS[key]


def make_system(name: str, graph: CSRGraph):
    """Instantiate (memoized) a system by benchmark name."""
    key = (id(graph), name)
    if key in _SYSTEMS:
        return _SYSTEMS[key]
    profile = profile_for(graph)
    if name == "decomine":
        system = DecoMineMiner(session_for(graph))
    elif name == "decomine(oriented)":
        system = DecoMineMiner(session_for(graph, orientation="degeneracy"))
    elif name == "automine":
        system = AutoMineInHouse(graph, profile=profile)
    elif name == "peregrine":
        system = Peregrine(graph, profile=profile)
    elif name == "graphpi":
        system = GraphPi(graph, profile=profile, count_optimization=False)
    elif name == "graphpi(count)":
        system = GraphPi(graph, profile=profile, count_optimization=True)
    elif name == "arabesque":
        system = Arabesque(graph)
    elif name == "rstream":
        system = RStream(graph)
    elif name == "pangolin":
        system = Pangolin(graph)
    elif name == "fractal":
        system = Fractal(graph)
    elif name == "escape":
        system = Escape(graph)
    else:
        raise KeyError(f"unknown system {name!r}")
    _SYSTEMS[key] = system
    return system
