"""Fractal re-implementation [Dias et al., SIGMOD'19] (single-node core).

Fractal explores subgraphs depth-first ("fractoids"), so unlike
Arabesque/Pangolin it never materializes a BFS frontier — low memory, no
crashes, but still pattern-oblivious enumeration.  The DFS here is the
classic ESU (Wernicke) scheme, which visits every connected vertex-induced
subgraph of size k exactly once; embeddings are classified at the leaves.

Edge-induced counts reuse the same walk: for each size-k vertex set, the
number of edge-induced embeddings of ``p`` it hosts equals the number of
spanning subgraphs of its induced graph isomorphic to ``p`` (cached per
isomorphism class).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterator

from repro.graph.csr import CSRGraph
from repro.patterns.conversion import spanning_subgraph_count
from repro.patterns.generation import all_connected_patterns
from repro.patterns.isomorphism import (
    automorphisms,
    canonical_code,
    canonical_form,
    find_isomorphism,
)
from repro.patterns.pattern import Pattern

__all__ = ["Fractal"]


class Fractal:
    name = "fractal"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # ESU: DFS enumeration of connected induced size-k subgraphs
    # ------------------------------------------------------------------
    def _connected_vertex_sets(self, k: int) -> Iterator[tuple[int, ...]]:
        graph = self.graph
        for v in range(graph.num_vertices):
            extension = [u for u in graph.neighbors(v).tolist() if u > v]
            yield from self._extend([v], extension, v, k)

    def _extend(self, subgraph: list[int], extension: list[int],
                root: int, k: int) -> Iterator[tuple[int, ...]]:
        if len(subgraph) == k:
            yield tuple(sorted(subgraph))
            return
        graph = self.graph
        ext = list(extension)
        while ext:
            w = ext.pop()
            covered = set(subgraph)
            neighborhood = {
                u for s in subgraph for u in graph.neighbors(s).tolist()
            }
            new_extension = list(ext)
            for u in graph.neighbors(w).tolist():
                if u > root and u not in covered and u not in neighborhood:
                    new_extension.append(u)
            yield from self._extend(subgraph + [w], new_extension, root, k)

    def _induced(self, vertices: tuple[int, ...]) -> Pattern:
        graph = self.graph
        edges = graph.subgraph_adjacency(vertices)
        labels = (
            [graph.label_of(v) for v in vertices] if graph.is_labeled else None
        )
        return Pattern(len(vertices), edges, labels=labels)

    # ------------------------------------------------------------------
    # Miner interface
    # ------------------------------------------------------------------
    def count(self, pattern: Pattern, induced: bool = False) -> int:
        target_code = canonical_code(
            pattern if self.graph.is_labeled or not pattern.is_labeled
            else pattern.without_labels()
        )
        count = 0
        if induced:
            for vertices in self._connected_vertex_sets(pattern.n):
                if canonical_code(self._induced(vertices)) == target_code:
                    count += 1
            return count
        spanning = _spanning_counter(canonical_form(pattern.without_labels()))
        if pattern.is_labeled and self.graph.is_labeled:
            # Labeled edge-induced counting classifies subgraph by subgraph.
            return self._labeled_edge_induced(pattern)
        for vertices in self._connected_vertex_sets(pattern.n):
            count += spanning(canonical_form(self._induced(vertices)))
        return count

    def _labeled_edge_induced(self, pattern: Pattern) -> int:
        count = 0
        for vertices in self._connected_vertex_sets(pattern.n):
            host = self._induced(vertices)
            count += spanning_subgraph_count(pattern, host)
        return count

    def motif_census(self, k: int) -> dict[Pattern, int]:
        buckets = {canonical_code(p): p for p in all_connected_patterns(k)}
        census = {p: 0 for p in buckets.values()}
        for vertices in self._connected_vertex_sets(k):
            code = canonical_code(self._induced(vertices).without_labels())
            census[buckets[code]] += 1
        return census

    def domains(self, pattern: Pattern) -> dict[int, set[int]]:
        collected: dict[int, set[int]] = {v: set() for v in range(pattern.n)}
        auts = automorphisms(pattern)
        for vertices in self._connected_vertex_sets(pattern.n):
            host = self._induced(vertices)
            # Every spanning placement of the pattern inside this induced
            # subgraph is an edge-induced match; enumerate them.
            for local_mapping in _spanning_placements(pattern, host):
                for sigma in auts:
                    for v in range(pattern.n):
                        collected[v].add(vertices[local_mapping[sigma[v]]])
        return collected


@lru_cache(maxsize=None)
def _spanning_counter(target: Pattern) -> Callable[[Pattern], int]:
    @lru_cache(maxsize=None)
    def counter(host: Pattern) -> int:
        return spanning_subgraph_count(target, host)

    return counter


def _spanning_placements(pattern: Pattern, host: Pattern):
    """Distinct spanning placements of ``pattern`` inside ``host`` (one
    representative mapping per placed edge set)."""
    import itertools

    host_edges = host.edges()
    seen: set[frozenset] = set()
    for subset in itertools.combinations(host_edges, pattern.num_edges):
        key = frozenset(subset)
        if key in seen:
            continue
        seen.add(key)
        candidate = Pattern(host.n, subset, labels=host.labels)
        if not candidate.is_connected:
            continue
        mapping = find_isomorphism(pattern, candidate)
        if mapping is not None:
            yield mapping
