"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.baselines import reference
from repro.cli import main, parse_pattern
from repro.exceptions import PatternError
from repro.graph import io
from repro.patterns import catalog


@pytest.fixture()
def edge_list_file(tmp_path, small_random_graph):
    path = tmp_path / "graph.txt"
    io.save_edge_list(small_random_graph, path)
    return str(path)


class TestParsePattern:
    @pytest.mark.parametrize("text,expected", [
        ("triangle", catalog.triangle()),
        ("house", catalog.house()),
        ("HOUSE", catalog.house()),
        ("4-chain", catalog.chain(4)),
        ("5-cycle", catalog.cycle(5)),
        ("4-clique", catalog.clique(4)),
        ("3-star", catalog.star(3)),
        ("6-path", catalog.chain(6)),
    ])
    def test_known_patterns(self, text, expected):
        assert parse_pattern(text) == expected

    @pytest.mark.parametrize("text", ["widget", "x-cycle", "4-blob", "-"])
    def test_unknown_patterns(self, text):
        with pytest.raises(PatternError):
            parse_pattern(text)


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "citeseer" in out and "friendster" in out

    def test_count(self, capsys, edge_list_file, small_random_graph):
        assert main(["count", "--graph", edge_list_file,
                     "--pattern", "triangle"]) == 0
        out = capsys.readouterr().out
        expected = reference.count_embeddings(
            small_random_graph, catalog.triangle()
        )
        assert str(expected) in out

    def test_count_induced(self, capsys, edge_list_file, small_random_graph):
        assert main(["count", "--graph", edge_list_file,
                     "--pattern", "4-chain", "--induced"]) == 0
        out = capsys.readouterr().out
        expected = reference.count_embeddings(
            small_random_graph, catalog.chain(4), induced=True
        )
        assert str(expected) in out

    def test_census(self, capsys, edge_list_file, small_random_graph):
        assert main(["census", "--graph", edge_list_file, "--size", "3"]) == 0
        out = capsys.readouterr().out
        tri = reference.count_embeddings(
            small_random_graph, catalog.triangle(), induced=True
        )
        assert str(tri) in out

    def test_explain_with_source(self, capsys, edge_list_file):
        assert main(["explain", "--graph", edge_list_file,
                     "--pattern", "4-chain", "--source"]) == 0
        out = capsys.readouterr().out
        assert "plan for" in out
        assert "def _plan(" in out

    def test_requires_graph_source(self):
        with pytest.raises(SystemExit):
            main(["count", "--pattern", "triangle"])

    def test_fsm_command(self, capsys, tmp_path):
        from repro.graph.generators import planted_communities

        graph = planted_communities(40, 3, 0.3, 0.05, num_labels=3, seed=8)
        path = tmp_path / "labeled.lg"
        io.save_labeled_graph(graph, path)
        # FSM needs the labeled loader; route through a dataset instead.
        assert main(["fsm", "--dataset", "cs", "--support", "25"]) == 0
        err = capsys.readouterr().err
        assert "frequent patterns" in err

    def test_count_with_progress_renders_a_bar(self, capsys,
                                               edge_list_file):
        assert main(["count", "--graph", edge_list_file,
                     "--pattern", "triangle", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "chunks" in captured.err
        assert "eta" in captured.err


class TestFriendlyErrors:
    """Bad paths and bad patterns exit nonzero with a one-line message,
    never a traceback."""

    def test_missing_graph_file(self, capsys):
        assert main(["count", "--graph", "/no/such/graph.txt",
                     "--pattern", "triangle"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot load graph:")
        assert "Traceback" not in err

    def test_missing_graph_file_for_stats(self, capsys):
        assert main(["stats", "--graph", "/no/such/graph.txt"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot load graph:")
        assert "Traceback" not in err

    def test_unreadable_graph_file(self, capsys, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_text("not an edge list\nat all\n")
        assert main(["count", "--graph", str(path),
                     "--pattern", "triangle"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot load graph:")

    def test_unknown_pattern(self, capsys, edge_list_file):
        assert main(["count", "--graph", edge_list_file,
                     "--pattern", "dodecahedron"]) == 2
        err = capsys.readouterr().err
        assert "unknown pattern" in err
        assert "Traceback" not in err

    def test_unknown_dataset(self, capsys):
        assert main(["count", "--dataset", "nope",
                     "--pattern", "triangle"]) == 2
        assert capsys.readouterr().err.startswith(
            "error: cannot load graph:"
        )


class TestHistoryCommand:
    def test_round_trip_through_count_ledger(self, capsys, edge_list_file,
                                             small_random_graph, tmp_path):
        import json
        import re

        from repro.baselines import reference as ref
        from repro.patterns import catalog as cat

        ledger = str(tmp_path / "ledger.jsonl")
        assert main(["count", "--graph", edge_list_file,
                     "--pattern", "triangle", "--ledger", ledger]) == 0
        capsys.readouterr()
        assert main(["history", "--ledger", ledger,
                     "--format", "json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        record = records[0]
        expected = ref.count_embeddings(small_random_graph, cat.triangle())
        assert record["pattern"] == cat.triangle().name
        assert record["raw_count"] // record["divisor"] == expected
        assert record["run_id"]
        assert record["plan_fingerprint"]
        assert re.fullmatch(r"[0-9a-f]{16}", record["graph_fingerprint"])
        assert "kernel_stats" in record["metrics"]
        assert "execute" in record["phases"]

    def test_table_format_and_filters(self, capsys, edge_list_file,
                                      tmp_path):
        ledger = str(tmp_path / "ledger.jsonl")
        for pattern in ("triangle", "house"):
            assert main(["count", "--graph", edge_list_file,
                         "--pattern", pattern, "--ledger", ledger]) == 0
        capsys.readouterr()
        assert main(["history", "--ledger", ledger, "--last", "1"]) == 0
        out = capsys.readouterr().out
        assert "house" in out and "3-clique" not in out
        assert main(["history", "--ledger", ledger,
                     "--pattern", "3-clique"]) == 0
        assert "3-clique" in capsys.readouterr().out

    def test_empty_ledger(self, capsys, tmp_path):
        assert main(["history", "--ledger",
                     str(tmp_path / "none.jsonl")]) == 0
        assert "no runs recorded" in capsys.readouterr().err

    def test_bad_since_value(self, capsys, tmp_path):
        assert main(["history", "--ledger", str(tmp_path / "l.jsonl"),
                     "--since", "yesterday-ish"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPerfCommand:
    def make_point(self, root, seconds, dispersion=0.0):
        from repro.bench.trajectory import (
            TrajectoryPoint, WorkloadPoint, write_point,
        )

        return write_point(TrajectoryPoint(
            suite="smoke",
            workloads=[WorkloadPoint("w", seconds, dispersion, 3)],
        ), root)

    def test_check_flags_injected_slowdown(self, capsys, tmp_path):
        self.make_point(tmp_path, 1.0)
        self.make_point(tmp_path, 1.3)
        assert main(["perf", "check", "--root", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "REGRESSION" in captured.err

    def test_check_passes_identical_rerun(self, capsys, tmp_path):
        self.make_point(tmp_path, 1.0, 0.01)
        self.make_point(tmp_path, 1.0, 0.01)
        assert main(["perf", "check", "--root", str(tmp_path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_with_single_point_is_a_noop(self, capsys, tmp_path):
        self.make_point(tmp_path, 1.0)
        assert main(["perf", "check", "--root", str(tmp_path)]) == 0
        assert "nothing to compare" in capsys.readouterr().err

    def test_check_without_points_errors(self, capsys, tmp_path):
        assert main(["perf", "check", "--root", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_explicit_baseline_and_candidate(self, capsys, tmp_path):
        base = self.make_point(tmp_path, 1.0)
        cand = self.make_point(tmp_path, 2.0)
        assert main(["perf", "check", "--baseline", str(base),
                     "--candidate", str(cand)]) == 1
        capsys.readouterr()
        assert main(["perf", "check", "--baseline", str(base),
                     "--candidate", str(base)]) == 0

    def test_validate(self, capsys, tmp_path):
        good = self.make_point(tmp_path, 1.0)
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 0}')
        assert main(["perf", "validate", str(good)]) == 0
        capsys.readouterr()
        assert main(["perf", "validate", str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "ok" in captured.out
        assert "INVALID" in captured.err

    def test_run_writes_a_point(self, capsys, tmp_path, monkeypatch):
        import repro.bench.trajectory as trajectory

        monkeypatch.setitem(
            trajectory.SUITES, "unit",
            lambda: {"tiny": lambda: 42},
        )
        assert main(["perf", "run", "--suite", "unit", "--repeats", "2",
                     "--root", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "tiny" in captured.out
        assert (tmp_path / "BENCH_0001.json").exists()
        point = trajectory.load_point(tmp_path / "BENCH_0001.json")
        assert point.workload("tiny").value == 42

    def test_run_unknown_suite(self, capsys, tmp_path):
        assert main(["perf", "run", "--suite", "nope",
                     "--root", str(tmp_path)]) == 2
        assert "unknown suite" in capsys.readouterr().err


class TestBatchCommand:
    def test_local_batch_counts_and_sharing(self, capsys, edge_list_file,
                                            small_random_graph):
        assert main(["batch", "--graph", edge_list_file,
                     "--pattern", "triangle,house,triangle"]) == 0
        captured = capsys.readouterr()
        tri = reference.count_embeddings(small_random_graph,
                                         catalog.triangle())
        house = reference.count_embeddings(small_random_graph,
                                           catalog.house())
        assert str(tri) in captured.out
        assert str(house) in captured.out
        assert "sharing:" in captured.err
        assert "batch ok" in captured.err

    def test_local_batch_json(self, capsys, edge_list_file,
                              small_random_graph):
        import json as json_mod

        assert main(["batch", "--graph", edge_list_file,
                     "--pattern", "triangle,diamond",
                     "--format", "json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["batch_id"]
        assert [r["count"] for r in payload["responses"]] == [
            reference.count_embeddings(small_random_graph,
                                       catalog.triangle()),
            reference.count_embeddings(small_random_graph,
                                       catalog.diamond()),
        ]
        assert payload["sharing"]["workload"] == 2

    def test_batch_bad_pattern_is_friendly(self, capsys, edge_list_file):
        assert main(["batch", "--graph", edge_list_file,
                     "--pattern", "triangle,widget"]) == 2
        assert "error" in capsys.readouterr().err

    def test_batch_unreachable_socket_is_friendly(self, capsys, tmp_path):
        assert main(["batch", "--socket", str(tmp_path / "no.sock"),
                     "--pattern", "triangle"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_remote_batch_over_daemon(self, capsys, small_random_graph,
                                      tmp_path):
        from repro.serve import MiningServer, ServerConfig

        sock = str(tmp_path / "cli-batch.sock")
        with MiningServer(small_random_graph,
                          ServerConfig(socket_path=sock)):
            assert main(["batch", "--socket", sock,
                         "--pattern", "triangle,house"]) == 0
        captured = capsys.readouterr()
        tri = reference.count_embeddings(small_random_graph,
                                         catalog.triangle())
        assert str(tri) in captured.out
        assert "batch ok" in captured.err
