"""Sorted-array vertex set algebra.

Every vertex set handled by the runtime is a strictly increasing
one-dimensional ``numpy`` array of vertex ids (``int64``).  The operations in
this module are exactly the vertex-set operation nodes the DecoMine AST
supports (paper section 7.1): intersection, subtraction, copy assignment,
bound trimming and neighbor-set loading (the latter lives on
:class:`repro.graph.csr.CSRGraph`).

All operations are non-destructive: inputs are never mutated, outputs may
share memory with inputs (slices) and must be treated as read-only.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EMPTY",
    "as_vertex_set",
    "intersect",
    "subtract",
    "exclude",
    "trim_below",
    "trim_above",
    "contains",
    "intersect_size",
    "subtract_size",
    "union",
]

DTYPE = np.int64

#: The canonical empty vertex set.  Read-only.
EMPTY = np.empty(0, dtype=DTYPE)
EMPTY.setflags(write=False)


def as_vertex_set(values) -> np.ndarray:
    """Build a vertex set from an arbitrary iterable of vertex ids.

    Duplicates are removed and the result is sorted.  Use this at API
    boundaries; internal code assumes its inputs are already valid sets.
    """
    arr = np.unique(np.asarray(list(values), dtype=DTYPE))
    return arr


def _membership_mask(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean mask over ``a`` marking elements that are also in ``b``.

    Uses binary search into the larger operand, which beats the
    concatenate-and-sort strategy of ``np.intersect1d`` for the skewed
    operand sizes typical of neighbor intersections.
    """
    if a.size == 0 or b.size == 0:
        return np.zeros(a.size, dtype=bool)
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = b.size - 1
    return b[idx] == a


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Set intersection of two sorted vertex sets."""
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        return EMPTY
    return a[_membership_mask(a, b)]


def intersect_size(a: np.ndarray, b: np.ndarray) -> int:
    """``len(intersect(a, b))`` without materializing the result."""
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        return 0
    return int(np.count_nonzero(_membership_mask(a, b)))


def subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Set difference ``a - b`` of two sorted vertex sets."""
    if a.size == 0:
        return EMPTY
    if b.size == 0:
        return a
    return a[~_membership_mask(a, b)]


def subtract_size(a: np.ndarray, b: np.ndarray) -> int:
    """``len(subtract(a, b))`` without materializing the result."""
    if a.size == 0:
        return 0
    if b.size == 0:
        return int(a.size)
    return int(a.size - np.count_nonzero(_membership_mask(a, b)))


def exclude(a: np.ndarray, *vertices: int) -> np.ndarray:
    """Remove specific vertex ids from a sorted vertex set.

    This implements the injectivity constraints of the enumeration loops:
    a candidate vertex must differ from every already-matched vertex.
    One binary search per excluded vertex; when none is present the input
    is returned unchanged (zero copies) — the common case, since matched
    vertices are usually outside the candidate neighborhood.
    """
    if a.size == 0 or not vertices:
        return a
    mask = None
    for v in vertices:
        idx = int(np.searchsorted(a, v))
        if idx < a.size and a[idx] == v:
            if mask is None:
                mask = np.ones(a.size, dtype=bool)
            mask[idx] = False
    if mask is None:
        return a
    return a[mask]


def trim_below(a: np.ndarray, bound: int) -> np.ndarray:
    """Keep only elements strictly smaller than ``bound``.

    This is the trimming operation used to realize symmetry-breaking
    restrictions such as ``v2 < v1``.
    """
    return a[: np.searchsorted(a, bound, side="left")]


def trim_above(a: np.ndarray, bound: int) -> np.ndarray:
    """Keep only elements strictly greater than ``bound``."""
    return a[np.searchsorted(a, bound, side="right"):]


def contains(a: np.ndarray, v: int) -> bool:
    """Membership test on a sorted vertex set."""
    idx = np.searchsorted(a, v)
    return bool(idx < a.size and a[idx] == v)


def union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Set union (used by the builder and tests, not by hot loops)."""
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    return np.union1d(a, b)
