"""Pseudo-Clique Mining (the paper's k-PC workload, section 8.1).

A size-``n`` pattern is a pseudo clique when it has at least
``n(n-1)/2 - k_missing`` edges; the paper evaluates ``k_missing = 1``, so
the pattern set is the clique plus the clique-minus-one-edge, counted
vertex-induced.
"""

from __future__ import annotations

from repro.apps.interface import Miner
from repro.patterns.catalog import pseudo_clique_patterns
from repro.patterns.pattern import Pattern

__all__ = ["count_pseudo_cliques"]


def count_pseudo_cliques(miner: Miner, k: int) -> dict[Pattern, int]:
    """Vertex-induced counts of the k-pseudo-clique patterns."""
    return {
        pattern: miner.count(pattern, induced=True)
        for pattern in pseudo_clique_patterns(k)
    }
