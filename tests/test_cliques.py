"""Tests for degeneracy-oriented clique counting."""

from __future__ import annotations

import pytest

from repro.apps.cliques import clique_census, count_cliques, degeneracy_order
from repro.baselines import reference
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi
from repro.patterns import catalog


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(25, 0.35, seed=12)


class TestDegeneracyOrder:
    def test_is_a_permutation(self, graph):
        order = degeneracy_order(graph)
        assert sorted(order) == list(range(graph.num_vertices))

    def test_clique_graph_order(self, k4_graph):
        assert sorted(degeneracy_order(k4_graph)) == [0, 1, 2, 3]

    def test_out_degrees_bounded_by_degeneracy(self):
        # A tree has degeneracy 1: every out-degree must be <= 1.
        tree = CSRGraph.from_edges(
            7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]
        )
        from repro.apps.cliques import _out_neighbors

        order = degeneracy_order(tree)
        assert max(len(x) for x in _out_neighbors(tree, order)) <= 1

    def test_empty_graph(self):
        from repro.graph.builder import GraphBuilder

        assert degeneracy_order(GraphBuilder(0).build()) == []


class TestCounting:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_bruteforce(self, graph, k):
        expected = reference.count_embeddings(graph, catalog.clique(k))
        assert count_cliques(graph, k) == expected

    def test_small_k(self, graph):
        assert count_cliques(graph, 1) == graph.num_vertices
        assert count_cliques(graph, 2) == graph.num_edges

    def test_invalid_k(self, graph):
        with pytest.raises(ValueError):
            count_cliques(graph, 0)

    def test_complete_graph_binomials(self):
        import math

        k6 = CSRGraph.from_edges(
            6, [(i, j) for i in range(6) for j in range(i + 1, 6)]
        )
        for k in range(3, 7):
            assert count_cliques(k6, k) == math.comb(6, k)

    def test_census_matches_individual_counts(self, graph):
        census = clique_census(graph, 5)
        for k in (3, 4, 5):
            assert census[k] == count_cliques(graph, k), k

    def test_triangle_free_graph(self):
        cycle = CSRGraph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        assert count_cliques(cycle, 3) == 0
        assert clique_census(cycle, 4) == {3: 0, 4: 0}

    def test_agreement_with_compiler_plan(self, graph):
        """The specialist and the compiled clique plan must agree — the
        cross-check the module docstring promises."""
        from repro.bench import profile_for, session_for

        session = session_for(graph)
        assert session.get_pattern_count(catalog.clique(4)) == \
            count_cliques(graph, 4)
