"""Scaled analogues of the paper's datasets (Table 1).

The paper evaluates on eight SNAP/GraMi graphs, up to 1.8 billion edges.
Those inputs (and the hardware to mine them) are not available here, so the
registry below provides *fixed-seed synthetic analogues*: each keeps the
paper graph's qualitative character (relative size ordering, density regime,
clustering, label count) at a scale a single-core pure-Python enumerator can
mine within benchmark budgets.  Real SNAP files can replace any entry via
:func:`repro.graph.io.load_edge_list` without touching the benchmarks.

Every entry records the paper's |V|/|E| so benchmark reports can print
paper-scale vs reproduction-scale side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.csr import CSRGraph
from repro.graph import generators as gen

__all__ = ["DatasetSpec", "REGISTRY", "load", "available", "clear_cache"]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry tying a paper dataset to its synthetic analogue."""

    name: str
    abbreviation: str
    paper_vertices: str
    paper_edges: str
    paper_labels: int | None
    description: str
    factory: Callable[[], CSRGraph]


def _citeseer() -> CSRGraph:
    # Tiny, sparse citation graph with 6 labels.
    g = gen.planted_communities(
        n=300, num_communities=6, p_in=0.04, p_out=0.0015,
        num_labels=6, seed=101, name="citeseer",
    )
    return g


def _emaileucore() -> CSRGraph:
    # Small but comparatively dense communication graph; department labels.
    g = gen.small_world(n=200, k=10, rewire=0.2, extra_triangles=250,
                        seed=202, name="emaileucore")
    return gen.attach_random_labels(g, num_labels=42, seed=202)


def _wikivote() -> CSRGraph:
    # Medium-density voting graph with a heavy-tailed degree distribution.
    g = gen.power_law(n=400, avg_degree=10.0, exponent=2.1, seed=303,
                      name="wikivote")
    return gen.cap_degrees(g, 48, seed=303)


def _mico() -> CSRGraph:
    # Co-authorship graph with 29 labels; the main FSM dataset.
    return gen.planted_communities(
        n=600, num_communities=20, p_in=0.1, p_out=0.004,
        num_labels=29, seed=404, name="mico",
    )


def _patents() -> CSRGraph:
    # Large sparse citation network: low average degree, low clustering.
    g = gen.power_law(n=1200, avg_degree=5.0, exponent=2.6, seed=505,
                      name="patents")
    return gen.cap_degrees(g, 40, seed=505)


def _livejournal() -> CSRGraph:
    # Social network: larger, heavier tail.
    g = gen.power_law(n=1600, avg_degree=7.0, exponent=2.3, seed=606,
                      name="livejournal")
    return gen.cap_degrees(g, 56, seed=606)


def _friendster() -> CSRGraph:
    # The paper's largest real graph (1.8B edges): largest analogue here.
    g = gen.power_law(n=2200, avg_degree=9.0, exponent=2.3, seed=707,
                      name="friendster")
    return gen.cap_degrees(g, 64, seed=707)


def _rmat() -> CSRGraph:
    # Synthesized with the RMAT generator, as in the paper.
    g = gen.rmat(scale=10, edge_factor=5, seed=808, name="rmat")
    return gen.cap_degrees(g, 48, seed=808)


REGISTRY: dict[str, DatasetSpec] = {
    spec.abbreviation: spec
    for spec in [
        DatasetSpec("citeseer", "cs", "3.3K", "4.5K", 6,
                    "sparse labeled citation graph", _citeseer),
        DatasetSpec("emaileucore", "ee", "1.0K", "16.1K", 42,
                    "dense small communication graph", _emaileucore),
        DatasetSpec("wikivote", "wk", "7.1K", "100.8K", None,
                    "voting graph, heavy-tailed degrees", _wikivote),
        DatasetSpec("mico", "mc", "96.6K", "1.1M", 29,
                    "labeled co-authorship graph (FSM)", _mico),
        DatasetSpec("patents", "pt", "3.8M", "16.5M", None,
                    "large sparse citation network", _patents),
        DatasetSpec("livejournal", "lj", "4.8M", "42.9M", None,
                    "large social network", _livejournal),
        DatasetSpec("friendster", "fr", "65.6M", "1.8B", None,
                    "billion-edge social network", _friendster),
        DatasetSpec("rmat", "rmat", "100M", "1.6B", None,
                    "RMAT-synthesized graph", _rmat),
    ]
}

_CACHE: dict[str, CSRGraph] = {}


def load(name: str) -> CSRGraph:
    """Load a dataset analogue by abbreviation or full name (memoized)."""
    key = name.lower()
    if key not in REGISTRY:
        for spec in REGISTRY.values():
            if spec.name == key:
                key = spec.abbreviation
                break
        else:
            raise KeyError(
                f"unknown dataset {name!r}; available: {sorted(REGISTRY)}"
            )
    if key not in _CACHE:
        _CACHE[key] = REGISTRY[key].factory()
    return _CACHE[key]


def available() -> list[str]:
    """Abbreviations of all registered datasets, in registry order."""
    return list(REGISTRY)


def clear_cache() -> None:
    """Drop memoized graphs (used by tests that probe generation)."""
    _CACHE.clear()
