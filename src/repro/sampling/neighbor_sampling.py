"""Neighbor-sampling pattern-count estimation (ASAP-style, paper §6.2).

Estimates the number of injective homomorphisms of a small pattern by
sequential importance sampling: grow a random embedding one vertex at a
time along a connected matching order, tracking the inverse of its
selection probability.  Each trial's weight — the product of candidate-set
sizes along the way (times ``n`` for the seed vertex) — is an unbiased
estimate of the injective homomorphism count; trials are averaged.

As the paper observes, the estimator is accurate for frequent patterns
(many successful trials) and underestimates rare ones — exactly the right
trade-off for a cost model, where frequent patterns drive the loops that
dominate execution time.
"""

from __future__ import annotations

import numpy as np

from repro.graph import vertex_set as vs
from repro.graph.csr import CSRGraph
from repro.patterns.matching_order import greedy_extension_order
from repro.patterns.pattern import Pattern

__all__ = ["estimate_injective_homomorphisms", "estimate_many"]


def _sampling_order(pattern: Pattern) -> tuple[int, ...]:
    first = max(range(pattern.n), key=pattern.degree)
    rest = [v for v in range(pattern.n) if v != first]
    if not rest:
        return (first,)
    return (first,) + greedy_extension_order(pattern, [first], rest)


def estimate_injective_homomorphisms(
    graph: CSRGraph,
    pattern: Pattern,
    trials: int = 400,
    seed: int = 0,
) -> float:
    """Unbiased estimate of ``inj(pattern, graph)`` via neighbor sampling."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    if n == 0:
        return 0.0
    if pattern.n == 1:
        return float(n)
    order = _sampling_order(pattern)
    total = 0.0
    for _ in range(trials):
        total += _one_trial(graph, pattern, order, rng, n)
    return total / trials


def _one_trial(graph, pattern, order, rng, n) -> float:
    matched: dict[int, int] = {}
    weight = float(n)
    matched[order[0]] = int(rng.integers(0, n))
    for v in order[1:]:
        candidates = None
        for w in pattern.neighbors(v):
            if w in matched:
                nbrs = graph.neighbors(matched[w])
                candidates = (
                    nbrs if candidates is None else vs.intersect(candidates, nbrs)
                )
        assert candidates is not None, "sampling order must be connected"
        if matched:
            candidates = vs.exclude(candidates, *matched.values())
        if candidates.size == 0:
            return 0.0
        weight *= candidates.size
        matched[v] = int(candidates[rng.integers(0, candidates.size)])
    return weight


def estimate_many(
    graph: CSRGraph,
    patterns,
    trials: int = 400,
    seed: int = 0,
) -> dict[Pattern, float]:
    """Estimate all ``patterns`` (each with an independent trial budget)."""
    return {
        pattern: estimate_injective_homomorphisms(
            graph, pattern, trials=trials, seed=seed + index
        )
        for index, pattern in enumerate(patterns)
    }
