"""The multi-query batch compiler and DAG executor.

The lock on the tentpole invariant: a batched workload returns counts
**bit-identical** to running each query sequentially through
``get_pattern_count`` — across every executor, orientation, worker
count, induced mix, duplicate/isomorphic submissions, and randomized
workloads — while the sharing report proves the DAG actually performed
fewer plan executions than the sequential baseline.
"""

from __future__ import annotations

import random

import pytest

from repro.api.messages import MiningRequest
from repro.api.session import DecoMine
from repro.baselines import reference
from repro.compiler.batch import compile_batch
from repro.compiler.codegen import compile_root
from repro.compiler.multi import build_merged_direct
from repro.compiler.specs import DirectSpec
from repro.exceptions import ReproError
from repro.graph.generators import erdos_renyi, power_law
from repro.patterns import catalog
from repro.patterns.isomorphism import automorphism_count
from repro.patterns.matching_order import connected_orders
from repro.patterns.pattern import Pattern
from repro.patterns.symmetry import symmetry_breaking_restrictions
from repro.runtime.batchrun import execute_batch
from repro.runtime.context import ExecutionContext
from repro.runtime.engine import EXECUTORS, EngineOptions

from tests.test_differential_random import random_pattern

#: Every catalog pattern with at most five vertices (the bench catalog).
PATTERNS = {
    "chain3": catalog.chain(3),
    "chain4": catalog.chain(4),
    "chain5": catalog.chain(5),
    "cycle4": catalog.cycle(4),
    "cycle5": catalog.cycle(5),
    "clique4": catalog.clique(4),
    "clique5": catalog.clique(5),
    "star3": catalog.star(3),
    "star4": catalog.star(4),
    "triangle": catalog.triangle(),
    "tailed_triangle": catalog.tailed_triangle(),
    "diamond": catalog.diamond(),
    "house": catalog.house(),
    "gem": catalog.gem(),
    "bowtie": catalog.bowtie(),
    "clique4_minus_edge": catalog.clique_minus_edge(4),
    "clique5_minus_edge": catalog.clique_minus_edge(5),
    "figure6": catalog.figure6_pattern(),
}
CATALOG = [PATTERNS[name] for name in sorted(PATTERNS)]


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(16, 0.35, seed=3)


@pytest.fixture(scope="module")
def skewed_graph():
    return power_law(20, avg_degree=5.0, exponent=2.2, seed=9)


def sequential_counts(graph, workload, engine=None):
    """The baseline: one fresh session, one run per query."""
    session = DecoMine(graph, engine=engine)
    return [session.get_pattern_count(pattern, induced=induced)
            for pattern, induced in workload]


def batched_counts(graph, workload, engine=None):
    session = DecoMine(graph, engine=engine)
    responses = session.submit_batch([
        MiningRequest(pattern=pattern, induced=induced)
        for pattern, induced in workload
    ])
    assert all(response.ok for response in responses)
    return [response.count for response in responses], session


class TestBatchMatchesSequential:
    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_catalog_edge_induced(self, graph, executor):
        workload = [(pattern, False) for pattern in CATALOG]
        engine = EngineOptions(executor=executor)
        got, _ = batched_counts(graph, workload, engine)
        assert got == sequential_counts(graph, workload, engine)

    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_catalog_vertex_induced(self, graph, executor):
        workload = [(pattern, True) for pattern in CATALOG]
        engine = EngineOptions(executor=executor)
        got, _ = batched_counts(graph, workload, engine)
        assert got == sequential_counts(graph, workload, engine)

    @pytest.mark.parametrize("orientation", ("degree", "degeneracy"))
    def test_oriented_execution(self, graph, orientation):
        workload = [(pattern, False) for pattern in CATALOG]
        engine = EngineOptions(orientation=orientation)
        got, _ = batched_counts(graph, workload, engine)
        assert got == sequential_counts(graph, workload, engine)

    def test_parallel_workers(self, skewed_graph):
        workload = [(pattern, False) for pattern in CATALOG]
        engine = EngineOptions(workers=2, chunks_per_worker=2)
        got, _ = batched_counts(skewed_graph, workload, engine)
        assert got == sequential_counts(skewed_graph, workload, engine)

    def test_mixed_induced_flags(self, graph):
        workload = [(catalog.house(), True), (catalog.house(), False),
                    (catalog.clique(4), True), (catalog.chain(4), False),
                    (catalog.diamond(), True)]
        got, _ = batched_counts(graph, workload)
        assert got == sequential_counts(graph, workload)

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_workloads(self, skewed_graph, seed):
        rng = random.Random(f"batch-{seed}")
        workload = [(random_pattern(rng), rng.random() < 0.3)
                    for _ in range(6)]
        # Throw in one duplicate so the dedup path always runs.
        workload.append(workload[rng.randrange(len(workload))])
        got, _ = batched_counts(skewed_graph, workload)
        assert got == sequential_counts(skewed_graph, workload)


class TestWorkloadDedup:
    def test_isomorphic_submissions_collapse(self, graph):
        relabeled = Pattern(3, [(2, 1), (1, 0), (0, 2)], name="tri-rot")
        workload = [(catalog.triangle(), False), (relabeled, False),
                    (catalog.triangle(), False)]
        got, session = batched_counts(graph, workload)
        assert got[0] == got[1] == got[2] == reference.count_embeddings(
            graph, catalog.triangle())
        sharing = session.last_batch_result.sharing
        assert sharing.workload == 3
        assert sharing.unique_queries == 1

    def test_single_vertex_pattern_is_trivial(self, graph):
        got, session = batched_counts(graph, [(Pattern(1, []), False),
                                              (catalog.triangle(), False)])
        assert got[0] == graph.num_vertices
        trivial = [node for node in
                   session.last_batch_result.node_results
                   if node.kind == "trivial"]
        assert len(trivial) == 1

    def test_empty_workload_raises(self, graph):
        session = DecoMine(graph)
        with pytest.raises(ReproError):
            session.submit_batch([])
        with pytest.raises(ReproError):
            compile_batch(session, [])

    def test_non_count_mode_rejected(self, graph):
        session = DecoMine(graph)
        request = MiningRequest(pattern=catalog.triangle(), mode="mine")
        with pytest.raises(ReproError):
            session.submit_batch([request])

    def test_conflicting_engine_overrides_rejected(self, graph):
        session = DecoMine(graph)
        requests = [
            MiningRequest(pattern=catalog.triangle(),
                          engine=EngineOptions(executor="codegen")),
            MiningRequest(pattern=catalog.house(),
                          engine=EngineOptions(executor="interpreter")),
        ]
        with pytest.raises(ReproError):
            session.submit_batch(requests)


class TestSharingReport:
    def test_catalog_sharing_clears_the_gate(self, graph):
        """The acceptance bar: >=30% of plan executions eliminated."""
        session = DecoMine(graph)
        batch_plan = compile_batch(
            session, [(pattern, False) for pattern in CATALOG])
        sharing = batch_plan.sharing
        assert sharing.plans_batched < sharing.plans_sequential
        assert sharing.eliminated_fraction >= 0.30
        payload = sharing.as_dict()
        assert payload["eliminated"] == (
            payload["plans_sequential"] - payload["plans_batched"])

    def test_merged_nodes_fuse_direct_plans(self, graph):
        session = DecoMine(graph)
        batch_plan = compile_batch(session, [
            (catalog.chain(4), False), (catalog.star(4), False),
            (catalog.cycle(4), False), (catalog.chain(3), False),
        ])
        sharing = batch_plan.sharing
        assert sharing.merged_nodes >= 1
        assert sharing.fused_members >= 2

    def test_describe_mentions_elimination(self, graph):
        session = DecoMine(graph)
        batch_plan = compile_batch(session, [
            (catalog.clique(5), False), (catalog.clique(4), False)])
        assert "eliminated" in batch_plan.describe()


class TestBatchResponses:
    def test_responses_share_one_batch_id(self, graph):
        session = DecoMine(graph)
        responses = session.submit_batch([
            MiningRequest(pattern=catalog.triangle(), request_id="a"),
            MiningRequest(pattern=catalog.house(), request_id="b"),
        ])
        assert responses[0].request_id == "a"
        assert responses[1].request_id == "b"
        assert responses[0].batch_id
        assert responses[0].batch_id == responses[1].batch_id
        assert responses[0].run_id == responses[0].batch_id
        assert all(response.plan_key for response in responses)

    def test_get_pattern_counts_facade(self, graph):
        session = DecoMine(graph)
        counts = session.get_pattern_counts(
            [catalog.triangle(), catalog.diamond()])
        assert counts == [
            reference.count_embeddings(graph, catalog.triangle()),
            reference.count_embeddings(graph, catalog.diamond()),
        ]

    def test_deadline_cancellation_reports_incomplete(self, graph):
        session = DecoMine(graph)
        responses = session.submit_batch([
            MiningRequest(pattern=catalog.clique(5), deadline_s=1e-9),
            MiningRequest(pattern=catalog.house()),
        ])
        assert not all(response.ok for response in responses)
        bad = [r for r in responses if not r.ok]
        assert all(r.count is None for r in bad)
        assert all(r.error or r.cancelled for r in bad)


class TestExecuteBatchDirect:
    def test_shared_cache_instance_threads_through(self, graph):
        from repro.runtime.setops import SetOpCache

        session = DecoMine(graph)
        batch_plan = compile_batch(session, [
            (catalog.clique(4), False), (catalog.clique(5), False)])
        cache = SetOpCache(4096)
        result = execute_batch(batch_plan, graph,
                               options=EngineOptions(cache=cache))
        assert result.ok
        assert cache.hits + cache.misses > 0

    def test_values_keyed_by_census(self, graph):
        session = DecoMine(graph)
        batch_plan = compile_batch(session, [(catalog.triangle(), False)])
        result = execute_batch(batch_plan, graph)
        assert result.ok
        assert len(result.values) >= 1
        assert all(isinstance(value, int)
                   for value in result.values.values())


class TestMergedPlanDedup:
    """The ``multi.py`` satellite: isomorphic specs share an accumulator."""

    def _specs(self, patterns, induced=False):
        specs = []
        for pattern in patterns:
            restrictions = (
                tuple(symmetry_breaking_restrictions(pattern))
                if automorphism_count(pattern) > 1 else ()
            )
            specs.append(DirectSpec(
                pattern, connected_orders(pattern)[0],
                restrictions=restrictions, induced=induced,
            ))
        return specs

    def _run(self, merged, graph):
        function, _ = compile_root(merged.root)
        accumulators = function(graph, ExecutionContext())
        return [
            accumulators[merged.accumulator_for(i)] // merged.divisors[i]
            for i in range(len(merged.patterns))
        ]

    def test_duplicate_specs_share_one_tree(self, graph):
        specs = self._specs([catalog.chain(3), catalog.chain(3),
                             catalog.star(3)])
        merged = build_merged_direct(specs)
        assert merged.unique_patterns == 2
        counts = self._run(merged, graph)
        assert counts[0] == counts[1] == reference.count_embeddings(
            graph, catalog.chain(3))
        assert counts[2] == reference.count_embeddings(
            graph, catalog.star(3))

    def test_isomorphic_relabeling_shares_one_tree(self, graph):
        relabeled = Pattern(3, [(2, 1), (1, 0)], name="chain3-rot")
        specs = self._specs([catalog.chain(3), relabeled])
        merged = build_merged_direct(specs)
        assert merged.unique_patterns == 1
        counts = self._run(merged, graph)
        assert counts[0] == counts[1] == reference.count_embeddings(
            graph, catalog.chain(3))

    def test_induced_flag_keeps_censuses_apart(self, graph):
        specs = self._specs([catalog.chain(3)]) + \
            self._specs([catalog.chain(3)], induced=True)
        merged = build_merged_direct(specs)
        assert merged.unique_patterns == 2
        counts = self._run(merged, graph)
        assert counts[0] == reference.count_embeddings(graph,
                                                       catalog.chain(3))
        assert counts[1] == reference.count_embeddings(
            graph, catalog.chain(3), induced=True)


class TestSharingOrderSelection:
    """``choose_sharing_orders``: re-ordered specs count identically and
    share deeper prefixes than the solo-optimal orders."""

    def _specs(self, patterns):
        specs = []
        for pattern in patterns:
            restrictions = (
                tuple(symmetry_breaking_restrictions(pattern))
                if automorphism_count(pattern) > 1 else ()
            )
            specs.append(DirectSpec(
                pattern, connected_orders(pattern)[-1],
                restrictions=restrictions,
            ))
        return specs

    def _run(self, merged, graph):
        function, _ = compile_root(merged.root)
        accumulators = function(graph, ExecutionContext())
        return [
            accumulators[merged.accumulator_for(i)] // merged.divisors[i]
            for i in range(len(merged.patterns))
        ]

    def test_positions_patterns_and_validity_preserved(self):
        from repro.compiler.multi import choose_sharing_orders
        from repro.patterns.matching_order import is_connected_order

        specs = self._specs([catalog.cycle(5), catalog.house(),
                             catalog.bowtie(), catalog.chain(4)])
        chosen = choose_sharing_orders(specs, num_vertices=500,
                                       avg_degree=12.0)
        assert len(chosen) == len(specs)
        for original, spec in zip(specs, chosen):
            assert spec.pattern is original.pattern
            assert spec.induced == original.induced
            assert sorted(spec.order) == list(range(spec.pattern.n))
            assert is_connected_order(spec.pattern, spec.order)

    def test_counts_bit_identical_after_reordering(self, graph):
        from repro.compiler.multi import choose_sharing_orders

        patterns = [catalog.cycle(5), catalog.house(), catalog.bowtie(),
                    catalog.figure6_pattern(), catalog.cycle(4)]
        specs = self._specs(patterns)
        chosen = choose_sharing_orders(specs, num_vertices=500,
                                       avg_degree=12.0)
        counts = self._run(build_merged_direct(chosen), graph)
        expected = [reference.count_embeddings(graph, pattern)
                    for pattern in patterns]
        assert counts == expected

    def test_reordered_group_shares_substantially(self, graph):
        # The objective is marginal estimated cost, not raw shared-loop
        # count — so the property locked here is the pair that matters:
        # counts stay bit-identical to the un-reordered merge, and the
        # chosen orders still share a substantial prefix fraction.
        from repro.compiler.multi import choose_sharing_orders

        patterns = [catalog.cycle(5), catalog.house(), catalog.bowtie(),
                    catalog.figure6_pattern(), catalog.chain(5)]
        specs = self._specs(patterns)
        baseline = build_merged_direct(specs)
        chosen = choose_sharing_orders(specs, num_vertices=500,
                                       avg_degree=12.0)
        merged = build_merged_direct(chosen)
        assert merged.reuse_ratio >= 0.35
        assert self._run(merged, graph) == self._run(baseline, graph)

    def test_selection_is_idempotent(self):
        # A chosen pair is within the acceptance margin of every
        # alternative, so re-selecting from the chosen specs must be a
        # fixed point — no oscillation between near-equal orders.
        from repro.compiler.multi import choose_sharing_orders

        specs = self._specs([catalog.cycle(5), catalog.house(),
                             catalog.bowtie()])
        first = choose_sharing_orders(specs, num_vertices=500,
                                      avg_degree=12.0)
        second = choose_sharing_orders(first, num_vertices=500,
                                       avg_degree=12.0)
        assert [(s.order, s.restrictions) for s in second] == \
            [(s.order, s.restrictions) for s in first]
