"""Exception hierarchy for the repro package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PatternError",
    "DecompositionError",
    "CompilationError",
    "ConstraintError",
    "BudgetExceededError",
    "ExecutionError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ExecutionError(ReproError):
    """Raised for engine misuse or an execution that could not complete.

    Covers invalid ``execute_plan`` arguments (``workers < 1``, unknown
    executor, emit-mode parallelism) and reading ``embedding_count`` off
    an :class:`~repro.runtime.engine.ExecutionResult` whose supervisor
    recorded unrecovered chunk failures.
    """


class PatternError(ReproError):
    """Raised for invalid pattern graphs (disconnected, too large, ...)."""


class DecompositionError(ReproError):
    """Raised when a requested decomposition is invalid for a pattern."""


class CompilationError(ReproError):
    """Raised when the compiler cannot produce a plan for a request."""


class ConstraintError(ReproError):
    """Raised for label constraints the system cannot decompose (§7.5)."""


class BudgetExceededError(ReproError):
    """Raised by baselines that exceed their memory/time budget.

    Reproduces the paper's "C: crashed (out of memory/disk space)" table
    entries as a catchable signal instead of an actual OOM.
    """
