"""Plan execution engine.

Runs compiled plans over graphs, with the parallel execution strategy of
paper section 7.4: the outermost loop is statically divided into chunks;
idle workers drain remaining chunks dynamically (the work-stealing
analogue of the paper's scheme — a shared queue of statically-cut chunks);
each chunk accumulates into privatized counters merged at the end, which
is correct because all accumulator updates are associative/commutative.

Each chunk runs with its own :class:`ExecutionContext`, hence its own
set-op memo cache; kernel dispatch counts (from
:data:`repro.runtime.setops.STATS`) and the cache counters are collected
per chunk and merged into ``ExecutionResult.metrics``, which is how the
benchmark reports surface kernel behaviour.  The same per-run deltas are
published into the :mod:`repro.observe` metrics registry, and — when
tracing is enabled — every chunk runs under a ``"chunk"`` span (worker
spans travel back through the per-chunk result channel).

Execution knobs are bundled in :class:`EngineOptions`; supervision knobs
(budget, checkpoint, supervision toggle) in
:class:`~repro.runtime.supervisor.RunPolicy`.  The pre-redesign kwargs
(``workers=``/``chunks_per_worker=``/``executor=`` and
``checkpoint=``/``supervised=``) were removed after their one-release
deprecation window; passing one raises :class:`ExecutionError` naming
the replacement.

Parallel runs are *supervised* by default: chunk dispatch goes through
:class:`repro.runtime.supervisor.Supervisor`, which retries chunks lost
to worker crashes or exceptions, honors ``RunBudget`` deadlines, and
(opt-in) checkpoints completed chunks for resume.  ``supervised=False``
(via ``RunPolicy``) selects the raw ``imap_unordered`` fast path with no
recovery — the baseline the supervisor's overhead is benchmarked against.

On a single-core host multiprocessing adds no wall-clock speedup; the
scalability benchmark therefore also reports the measured per-chunk work
balance, from which the multi-core speedup curve follows.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import time
from dataclasses import dataclass, replace

import numpy as np
from types import MappingProxyType
from typing import Mapping

from repro.compiler.build import COUNT_ACC
from repro.compiler.interpreter import run_interpreter
from repro.compiler.pipeline import CompiledPlan
from repro.exceptions import ExecutionError, ReproError
from repro.graph.csr import CSRGraph
from repro.graph.transform import ORIENTATIONS, OrientedGraph, orient
from repro.observe.trace import (
    begin_worker_trace,
    graft_worker_spans,
    span,
    take_worker_spans,
)
from repro.runtime import setops, vectorops
from repro.runtime.context import ExecutionContext
from repro.runtime.vectorized import run_vectorized

__all__ = [
    "EXECUTORS",
    "EngineOptions",
    "ExecutionMetrics",
    "ExecutionResult",
    "execute_plan",
    "chunk_ranges",
]

#: Valid ``EngineOptions.executor`` choices.
EXECUTORS = ("codegen", "interpreter", "vectorized")


@dataclass(frozen=True)
class EngineOptions:
    """How to execute a plan (everything except *what* and *on what*).

    Parameters
    ----------
    workers:
        Fork-pool workers (1 = in-process serial).
    chunks_per_worker:
        Static chunking granularity: the outer loop is cut into
        ``workers * chunks_per_worker`` ranges drained dynamically.
    executor:
        ``"codegen"`` (default), ``"interpreter"`` or ``"vectorized"``
        (the array-at-a-time NumPy backend; counting plans only — see
        :mod:`repro.runtime.vectorized`).
    shared_graph:
        Parallel runs only: place the graph's CSR arrays in one
        ``multiprocessing.shared_memory`` segment that fork-pool workers
        attach to zero-copy (see :mod:`repro.graph.shared`), instead of
        relying on copy-on-write heap pages.  The owning run unlinks the
        segment when its pool is done, surviving pool restarts and
        worker deaths without leaks.  Default on; ignored for serial
        runs and on platforms without ``fork``.
    cache:
        Per-chunk set-op memo cache policy, as accepted by
        :class:`~repro.runtime.context.ExecutionContext`: ``True``
        (default capacity), an ``int`` capacity, or ``False`` to disable.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` injected into
        every chunk context (deterministic fault-injection harness).
    orientation:
        ``"none"`` (default), ``"degree"`` or ``"degeneracy"``: execute
        counting plans on the orientation-relabeled graph (see
        :mod:`repro.graph.transform`).  Counts are unchanged (relabeling
        is an isomorphism); plans compiled with the matching orientation
        replace symmetry-trimmed adjacency with out-neighborhood
        lookups, and chunk ranges are cut by oriented-degree prefix
        sums so relabeled heavy hitters spread across chunks.
    progress:
        Optional :data:`~repro.observe.progress.ProgressReporter`
        callable.  Supervised executions fire it once per completed
        chunk with a :class:`~repro.observe.progress.ProgressEvent`
        (chunks/work done, embeddings so far, throughput, ETA) and
        refresh the ``repro_progress_*`` gauges.  Unsupervised paths
        emit no heartbeats.
    """

    workers: int = 1
    chunks_per_worker: int = 4
    executor: str = "codegen"
    shared_graph: bool = True
    cache: bool | int = True
    faults: object | None = None
    orientation: str = "none"
    progress: object | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {self.workers}")
        if self.chunks_per_worker < 1:
            raise ExecutionError(
                f"chunks_per_worker must be >= 1, got {self.chunks_per_worker}"
            )
        if self.executor not in EXECUTORS:
            raise ExecutionError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{EXECUTORS}"
            )
        if self.orientation not in ORIENTATIONS:
            raise ExecutionError(
                f"unknown orientation {self.orientation!r}; expected one "
                f"of {ORIENTATIONS}"
            )


@dataclass(frozen=True)
class ExecutionMetrics:
    """Typed read-only telemetry view of one execution.

    Consolidates what PR 1 (kernel/cache counters) and PR 3 (supervisor
    counters) used to scatter across ``ExecutionResult`` attributes; the
    same values are published as per-run deltas into
    :data:`repro.observe.REGISTRY`.
    """

    kernel_stats: Mapping[str, int]
    retries: int = 0
    resumed_chunks: int = 0
    pool_restarts: int = 0
    failures: int = 0
    bisections: int = 0
    watchdog_kills: int = 0
    frontier_downshifts: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Set-op memo cache hit rate over this execution (0.0 if off)."""
        hits = self.kernel_stats.get("cache_hits", 0)
        lookups = hits + self.kernel_stats.get("cache_misses", 0)
        return hits / lookups if lookups else 0.0

    @property
    def kernel_calls(self) -> int:
        """Total set-op kernel invocations during this execution."""
        return sum(
            self.kernel_stats.get(name, 0) for name in setops.KernelStats.FIELDS
        )

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON-ready)."""
        return {
            "kernel_stats": dict(self.kernel_stats),
            "kernel_calls": self.kernel_calls,
            "cache_hit_rate": self.cache_hit_rate,
            "retries": self.retries,
            "resumed_chunks": self.resumed_chunks,
            "pool_restarts": self.pool_restarts,
            "failures": self.failures,
            "bisections": self.bisections,
            "watchdog_kills": self.watchdog_kills,
            "frontier_downshifts": self.frontier_downshifts,
        }


class ExecutionResult:
    """Outcome of a plan execution.

    ``accumulators``/``seconds``/``divisor``/``chunk_seconds`` are the
    result proper; ``failures`` holds structured :class:`ChunkFailure`
    entries for chunks that exhausted recovery (empty on clean runs);
    all remaining telemetry lives on ``metrics``
    (an :class:`ExecutionMetrics` read-only view).  The pre-redesign
    flat telemetry attributes (``kernel_stats``, ``cache_hit_rate``,
    ``retries``, ...) were removed with the options redesign — read
    them off ``metrics``.
    """

    def __init__(
        self,
        accumulators: dict[str, int],
        seconds: float,
        divisor: int,
        chunk_seconds: list[float] | None = None,
        kernel_stats: dict[str, int] | None = None,
        failures: list | None = None,
        retries: int = 0,
        resumed_chunks: int = 0,
        pool_restarts: int = 0,
        cancelled: str | None = None,
        salvage: dict | None = None,
        bisections: int = 0,
        watchdog_kills: int = 0,
        frontier_downshifts: int = 0,
    ) -> None:
        self.accumulators = accumulators
        self.seconds = seconds
        self.divisor = divisor
        self.chunk_seconds = list(chunk_seconds) if chunk_seconds else []
        self.failures = list(failures) if failures else []
        #: Cancel reason that stopped the run early ("deadline" |
        #: "interrupt" | "watchdog"), or None for a run-to-completion.
        self.cancelled = cancelled
        #: Salvage state of a cancelled/incomplete run: completed work
        #: ``fraction`` (degree-weighted), ``chunks_done``/``chunks_total``
        #: and the ``unfinished`` chunk bounds; None on clean runs.
        self.salvage = salvage
        #: Ledger id of this execution's run record, or "" when no
        #: ledger was active (set by ``execute_plan`` after recording).
        self.run_id = ""
        self.metrics = ExecutionMetrics(
            kernel_stats=MappingProxyType(dict(kernel_stats or {})),
            retries=retries,
            resumed_chunks=resumed_chunks,
            pool_restarts=pool_restarts,
            failures=len(self.failures),
            bisections=bisections,
            watchdog_kills=watchdog_kills,
            frontier_downshifts=frontier_downshifts,
        )

    @property
    def ok(self) -> bool:
        """True when every chunk completed (counts are trustworthy)."""
        return not self.failures

    @property
    def raw_count(self) -> int:
        return self.accumulators.get(COUNT_ACC, 0)

    @property
    def embedding_count(self) -> int:
        if self.failures:
            summary = "; ".join(f.describe() for f in self.failures[:3])
            more = len(self.failures) - 3
            if more > 0:
                summary += f"; +{more} more"
            raise ExecutionError(
                f"execution incomplete — {len(self.failures)} chunk(s) "
                f"unrecovered, the partial count is not meaningful "
                f"({summary})"
            )
        raw = self.raw_count
        if raw % self.divisor != 0:
            raise ReproError(
                f"raw count {raw} not divisible by multiplicity "
                f"{self.divisor}: the plan's symmetry accounting is broken"
            )
        return raw // self.divisor

    def work_balance(self) -> float:
        """Mean/max chunk time: 1.0 is perfectly balanced."""
        if not self.chunk_seconds:
            return 1.0
        peak = max(self.chunk_seconds)
        if peak == 0:
            return 1.0
        return (sum(self.chunk_seconds) / len(self.chunk_seconds)) / peak

    def __repr__(self) -> str:
        m = self.metrics
        supervision = ""
        if m.retries or m.resumed_chunks or m.pool_restarts or self.failures:
            supervision = (
                f", retries={m.retries}, failures={len(self.failures)}, "
                f"resumed_chunks={m.resumed_chunks}, "
                f"pool_restarts={m.pool_restarts}"
            )
        return (
            f"ExecutionResult(raw_count={self.raw_count}, ok={self.ok}, "
            f"seconds={self.seconds:.4f}, chunks={len(self.chunk_seconds)}"
            f"{supervision})"
        )

    def describe(self) -> str:
        """Human-readable run summary, self-explanatory even on failure."""
        m = self.metrics
        salvage_lines = []
        if self.cancelled is not None or self.salvage is not None:
            salvage = self.salvage or {}
            salvage_lines.append(
                f"cancelled: {self.cancelled or 'no'} — salvaged "
                f"{salvage.get('fraction', 0.0):.1%} of the work "
                f"({salvage.get('chunks_done', 0)}/"
                f"{salvage.get('chunks_total', 0)} chunks)"
            )
        lines = [
            f"{'ok' if self.ok else 'INCOMPLETE'}: raw count "
            f"{self.raw_count:,} / divisor {self.divisor} in "
            f"{self.seconds:.3f}s over {len(self.chunk_seconds)} chunk(s) "
            f"(balance {self.work_balance():.2f})",
            f"supervision: {m.retries} retries, {len(self.failures)} "
            f"failed chunk(s), {m.resumed_chunks} resumed from checkpoint, "
            f"{m.pool_restarts} pool restarts",
            f"kernels: {m.kernel_calls:,} set-op calls, cache hit rate "
            f"{m.cache_hit_rate:.1%}",
        ]
        lines.extend(salvage_lines)
        if m.bisections:
            lines.append(
                f"resources: {m.bisections} bisection(s), "
                f"{m.watchdog_kills} watchdog kill(s), "
                f"{m.frontier_downshifts} frontier downshift(s)"
            )
        for failure in self.failures[:5]:
            lines.append(f"  {failure.describe()}")
        if len(self.failures) > 5:
            lines.append(f"  ... +{len(self.failures) - 5} more")
        return "\n".join(lines)


def chunk_ranges(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``chunks`` contiguous ranges."""
    chunks = max(1, min(chunks, total)) if total else 1
    bounds = [round(i * total / chunks) for i in range(chunks + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(chunks)
        if bounds[i] < bounds[i + 1]
    ]


def _plan_ranges(graph: CSRGraph, orientation: str,
                 chunks: int) -> list[tuple[int, int]]:
    """Chunk the outer vertex loop.

    Unoriented runs keep the historic even vertex split.  Oriented runs
    cut by oriented-degree prefix sums instead: relabeling sorts heavy
    hitters to one end of the id space, so equal-width vertex ranges
    would put nearly all the work into the chunks covering that end.
    Each vertex is weighted by its out-degree plus one (the constant
    loop overhead), so zero-out-degree tails still split.
    """
    if orientation == "none" or not isinstance(graph, OrientedGraph):
        return chunk_ranges(graph.num_vertices, chunks)
    total_vertices = graph.num_vertices
    chunks = max(1, min(chunks, total_vertices)) if total_vertices else 1
    weights = graph.out_degree_prefix + np.arange(
        total_vertices + 1, dtype=np.int64
    )
    total = int(weights[-1])
    targets = [round(i * total / chunks) for i in range(1, chunks)]
    cuts = np.searchsorted(weights, targets, side="left")
    bounds = [0, *(int(c) for c in cuts), total_vertices]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(len(bounds) - 1)
        if bounds[i] < bounds[i + 1]
    ]


def _effective_orientation(plan: CompiledPlan, options: EngineOptions) -> str:
    """Resolve the orientation this execution runs under.

    A plan compiled for an orientation *requires* it (its ``oriented``
    ops read ``graph.out_neighbors``); a bare ``options.orientation``
    merely relabels the graph, which still pays off because symmetry
    trims then cut to out-neighborhood-sized suffixes.  Conflicting
    non-``"none"`` requests are an error rather than a silent pick.
    """
    plan_mode = getattr(plan, "orientation", "none")
    if (
        plan_mode != "none"
        and options.orientation != "none"
        and plan_mode != options.orientation
    ):
        raise ExecutionError(
            f"plan was compiled for orientation {plan_mode!r} but the "
            f"engine was configured with {options.orientation!r}; "
            "recompile the plan or align EngineOptions.orientation"
        )
    orientation = plan_mode if plan_mode != "none" else options.orientation
    if orientation == "none":
        return orientation
    if plan.mode == "emit":
        raise ExecutionError(
            "oriented execution relabels vertex ids, which emit-mode "
            "UDFs observe through partial embeddings; run emit plans "
            "with orientation='none'"
        )
    if getattr(plan.root, "num_preds", 0):
        raise ExecutionError(
            "oriented execution relabels vertex ids, which constraint "
            "predicates observe; run constrained plans with "
            "orientation='none'"
        )
    return orientation


def _merge_stats(into: dict[str, int], part: dict[str, int]) -> None:
    for key, value in part.items():
        into[key] = into.get(key, 0) + value


#: Keywords that predate the EngineOptions/RunPolicy redesign, with the
#: spelling that replaced each — kept only to produce a pointed error.
_REMOVED_KWARGS = {
    "workers": "EngineOptions(workers=...)",
    "chunks_per_worker": "EngineOptions(chunks_per_worker=...)",
    "executor": "EngineOptions(executor=...)",
    "cache": "EngineOptions(cache=...)",
    "faults": "EngineOptions(faults=...)",
    "checkpoint": "RunPolicy(checkpoint=...)",
    "supervised": "RunPolicy(supervised=...)",
}


def _reject_removed_kwargs(caller: str, removed: dict) -> None:
    if not removed:
        return
    unknown = sorted(set(removed) - set(_REMOVED_KWARGS))
    if unknown:
        raise TypeError(
            f"{caller}() got unexpected keyword argument(s): "
            + ", ".join(unknown)
        )
    replacements = "; ".join(
        f"{key}= -> {_REMOVED_KWARGS[key]}" for key in sorted(removed)
    )
    raise ExecutionError(
        f"{caller}({'/'.join(sorted(f'{k}=' for k in removed))}) was "
        f"removed with the options redesign: {replacements} "
        "(pass the bundle via the `options`/`policy` arguments)"
    )


def _resolve_policy(policy):
    """Normalize RunPolicy | RunBudget | None into the (budget,
    checkpoint, supervised, resources) tuple the engine works with."""
    from repro.runtime.resources import ResourceBudget
    from repro.runtime.supervisor import CheckpointStore, RunBudget, RunPolicy

    budget = checkpoint = supervised = resources = None
    if isinstance(policy, RunBudget):
        budget = policy
    elif isinstance(policy, RunPolicy):
        budget = policy.budget
        checkpoint = policy.checkpoint
        supervised = policy.supervised
        resources = policy.resources
    elif policy is not None:
        raise ExecutionError(
            f"policy must be a RunPolicy or RunBudget, got {policy!r}"
        )
    if resources is not None and not isinstance(resources, ResourceBudget):
        raise ExecutionError(
            f"RunPolicy.resources must be a ResourceBudget, got "
            f"{resources!r}"
        )
    if checkpoint is not None and not hasattr(checkpoint, "record"):
        checkpoint = CheckpointStore(checkpoint)
    return budget, checkpoint, supervised, resources


def _publish_metrics(stats: dict[str, int], chunk_seconds: list[float],
                     retries: int, resumed_chunks: int, pool_restarts: int,
                     num_failures: int, bisections: int = 0,
                     watchdog_kills: int = 0, frontier_downshifts: int = 0,
                     cancelled: str | None = None,
                     salvage_fraction: float | None = None) -> None:
    """Fold one execution's telemetry delta into the global registry.

    Batched per run (not per kernel call), so the cost is a handful of
    dictionary operations regardless of workload size.
    """
    from repro.observe import metrics as om

    om.counter(
        "repro_executions_total", "plan executions (aux plans counted)"
    ).inc()
    for key, value in stats.items():
        if not value:
            continue
        if key.startswith("cache_"):
            name = f"repro_setop_cache_{key[6:]}_total"
        elif key.startswith("vec_"):
            name = f"repro_vectorized_{key[4:]}_total"
        else:
            name = f"repro_setops_{key}_total"
        om.counter(name, "set-op kernel telemetry (per-run delta)").inc(value)
    if retries:
        om.counter("repro_chunk_retries_total",
                   "chunk re-dispatches by the supervisor").inc(retries)
    if resumed_chunks:
        om.counter("repro_checkpoint_resumed_chunks_total",
                   "chunks replayed from a checkpoint").inc(resumed_chunks)
    if pool_restarts:
        om.counter("repro_pool_restarts_total",
                   "worker pool rebuilds").inc(pool_restarts)
    if num_failures:
        om.counter("repro_chunk_failures_total",
                   "chunks that exhausted recovery").inc(num_failures)
    if bisections:
        om.counter("repro_resource_bisections_total",
                   "chunk bisections after memory/timeout casualties"
                   ).inc(bisections)
    if watchdog_kills:
        om.counter("repro_resource_watchdog_kills_total",
                   "hard-RSS cancellations by the memory watchdog"
                   ).inc(watchdog_kills)
    if frontier_downshifts:
        om.counter("repro_resource_frontier_downshifts_total",
                   "soft-watermark frontier-cap downshifts"
                   ).inc(frontier_downshifts)
    if cancelled is not None:
        om.counter("repro_resource_cancellations_total",
                   "runs stopped early through the cancel token").inc()
    if salvage_fraction is not None:
        om.gauge("repro_resource_salvage_fraction",
                 "completed work fraction of the last incomplete run"
                 ).set(float(salvage_fraction))
    chunk_hist = om.histogram("repro_chunk_seconds", "per-chunk wall time")
    for seconds in chunk_seconds:
        chunk_hist.observe(seconds)


def execute_plan(
    plan: CompiledPlan,
    graph: CSRGraph,
    ctx: ExecutionContext | None = None,
    options: EngineOptions | None = None,
    policy=None,
    **removed,
) -> ExecutionResult:
    """Execute a compiled plan.

    ``options`` (an :class:`EngineOptions`) bundles the execution knobs:
    worker count, chunking, executor choice, set-op cache policy, fault
    plan.  With ``options.workers > 1`` the outer loop is chunked across
    a fork-based process pool; emit-mode plans (UDF callbacks hold user
    state) run single-process.

    ``policy`` (a :class:`~repro.runtime.supervisor.RunPolicy`, or a
    bare :class:`~repro.runtime.supervisor.RunBudget` for just the
    retry/deadline knobs) bundles supervision: retry caps, backoff,
    per-chunk timeouts, the whole-run deadline, the checkpoint store for
    killed-run resume, and the supervision toggle.  Supervision defaults
    to on whenever it can matter — parallel runs, or any run with a
    budget, checkpoint, or fault plan; ``RunPolicy(supervised=False)``
    forces the raw unrecoverable fast path.

    The keyword spellings predating :class:`EngineOptions` and the
    ``RunPolicy`` fold (``workers=``, ``chunks_per_worker=``,
    ``executor=``, ``checkpoint=``, ``supervised=``, ...) were removed
    after their deprecation release; passing one raises
    :class:`ExecutionError` naming the replacement spelling.
    """
    _reject_removed_kwargs("execute_plan", removed)
    options = options if options is not None else EngineOptions()
    policy_budget, checkpoint, supervised, resources = _resolve_policy(policy)
    if ctx is None:
        ctx = ExecutionContext(plan.root.num_tables, cache=options.cache,
                               faults=options.faults)
    if options.workers > 1 and plan.mode == "emit":
        raise ExecutionError(
            "emit-mode plans run single-process: user UDF state cannot be "
            "merged across workers; aggregate via counting accumulators "
            "instead"
        )
    if plan.mode == "emit" and (
        policy_budget is not None or checkpoint is not None
        or resources is not None
    ):
        raise ExecutionError(
            "supervised execution re-runs chunks and would re-deliver "
            "partial embeddings to the UDF; emit-mode plans run "
            "unsupervised"
        )
    if supervised is None:
        supervised = (
            options.workers > 1
            or policy_budget is not None
            or checkpoint is not None
            or resources is not None
            or ctx.faults is not None
        ) and plan.mode != "emit"
    if resources is not None and not supervised:
        raise ExecutionError(
            "resource-governed execution needs the supervisor (token "
            "lifecycle, bisection); drop RunPolicy(supervised=False) or "
            "the resource budget"
        )

    orientation = _effective_orientation(plan, options)
    # orient() memoizes per (graph, mode), so repeated executions — and
    # the aux-plan recursion below, which passes the *original* graph —
    # reuse one relabeled copy.
    exec_graph = orient(graph, orientation) if orientation != "none" else graph

    deadline_at = None
    if policy_budget is not None and policy_budget.deadline_s is not None:
        deadline_at = time.monotonic() + policy_budget.deadline_s

    # Resource governor: one cancel token per governed execution, owned
    # here (created before the span, unlinked in the finally below) and
    # exposed to SIGINT handlers through the active-token slot.
    governor = None
    gov_token = None
    saved_resources = None
    if resources is not None:
        from repro.runtime.resources import (
            CancelToken,
            ResourceGovernor,
            set_active_token,
        )

        gov_token = CancelToken.create()
        governor = ResourceGovernor(resources, gov_token)
        set_active_token(gov_token)
        saved_resources = (ctx.resources, ctx.poll_cancel)
        ctx.resources = governor
        ctx.poll_cancel = governor.poll

    run_span = span(
        "execute", pattern=plan.pattern.name or repr(plan.pattern),
        mode=plan.mode, workers=options.workers, executor=options.executor,
        supervised=bool(supervised), orientation=orientation,
    )
    gov_scope = (
        _GovernorScope(ctx, saved_resources, gov_token)
        if governor is not None else contextlib.nullcontext()
    )
    with gov_scope, run_span:
        started = time.perf_counter()
        kernel_before = setops.STATS.snapshot()
        vec_before = vectorops.VSTATS.snapshot()
        cache_before = ctx.cache_counters()
        retries = resumed_chunks = pool_restarts = 0
        bisections = watchdog_kills = frontier_downshifts = 0
        cancelled = None
        salvage = None
        failures: list = []
        if supervised:
            from repro.runtime.supervisor import Supervisor

            heartbeat = None
            if options.progress is not None:
                from repro.observe.progress import as_heartbeat

                heartbeat = as_heartbeat(options.progress)
            ranges = _plan_ranges(
                exec_graph, orientation,
                options.workers * options.chunks_per_worker,
            )
            outcome = Supervisor(
                plan, exec_graph, ctx, ranges, options.workers,
                options.executor, budget=policy_budget, checkpoint=checkpoint,
                deadline_at=deadline_at, cache=options.cache,
                progress=heartbeat, shared_graph=options.shared_graph,
                resources=governor,
            ).run()
            accumulators = outcome.accumulators
            chunk_seconds = outcome.chunk_seconds
            stats = outcome.stats
            retries = outcome.retries
            failures = list(outcome.failures)
            resumed_chunks = outcome.resumed_chunks
            pool_restarts = outcome.pool_restarts
            cancelled = outcome.cancelled
            bisections = outcome.bisections
            watchdog_kills = outcome.watchdog_kills
            frontier_downshifts = outcome.frontier_downshifts
            if cancelled is not None or failures:
                salvage = {
                    "fraction": (
                        round(outcome.work_done / outcome.work_total, 6)
                        if outcome.work_total else 1.0
                    ),
                    "chunks_done": outcome.chunks_done,
                    "chunks_total": outcome.chunks_total,
                    "unfinished": [
                        list(f.bounds) for f in outcome.failures[:32]
                    ],
                }
            _merge_stats(stats, setops.STATS.delta(kernel_before))
            _merge_stats(stats, vectorops.VSTATS.delta(vec_before))
        elif options.workers <= 1:
            with span("chunk", index=0) as chunk_span:
                accumulators = _run_range(plan, exec_graph, ctx, None, None,
                                          options.executor)
            # When tracing, the span's clock is the measurement — a
            # second perf_counter pair could disagree with it (GC pause
            # between the two reads) and break trace/result accounting.
            chunk_seconds = [chunk_span.duration
                             or (time.perf_counter() - started)]
            stats = setops.STATS.delta(kernel_before)
            _merge_stats(stats, vectorops.VSTATS.delta(vec_before))
        else:
            ranges = _plan_ranges(
                exec_graph, orientation,
                options.workers * options.chunks_per_worker,
            )
            accumulators, chunk_seconds, stats = _run_parallel(
                plan, exec_graph, ctx, ranges, options
            )
            _merge_stats(stats, setops.STATS.delta(kernel_before))
            _merge_stats(stats, vectorops.VSTATS.delta(vec_before))
        for key, value in ctx.cache_counters().items():
            stats[key] = stats.get(key, 0) + value - cache_before.get(key, 0)
        # This execution's own telemetry goes to the registry before the
        # aux-plan corrections below: each aux execution recurses through
        # execute_plan and publishes its own delta.
        _publish_metrics(stats, chunk_seconds, retries, resumed_chunks,
                         pool_restarts, len(failures),
                         bisections=bisections,
                         watchdog_kills=watchdog_kills,
                         frontier_downshifts=frontier_downshifts,
                         cancelled=cancelled,
                         salvage_fraction=(salvage or {}).get("fraction"))
        # Globally-counted shrinkage corrections (see
        # CompiledPlan.aux_plans): each quotient pattern's injective count
        # is subtracted once, instead of re-enumerating quotient
        # extensions per cutting-set match.  Aux plans share the
        # checkpoint store (under their own fingerprints) and inherit
        # whatever remains of the whole-run deadline, so resume and
        # deadline semantics are exact for decomposed counts.
        for aux_plan, multiplier in plan.aux_plans:
            aux_budget = policy_budget
            if deadline_at is not None:
                aux_budget = replace(
                    policy_budget,
                    deadline_s=max(0.0, deadline_at - time.monotonic()),
                )
            aux_policy = _make_policy(aux_budget, checkpoint, supervised,
                                      resources)
            global _IN_AUX
            previous_aux, _IN_AUX = _IN_AUX, True
            try:
                aux_result = execute_plan(
                    aux_plan, graph, options=options, policy=aux_policy,
                )
            finally:
                _IN_AUX = previous_aux
            accumulators[COUNT_ACC] = (
                accumulators.get(COUNT_ACC, 0)
                - multiplier * aux_result.raw_count
            )
            _merge_stats(stats, aux_result.metrics.kernel_stats)
            retries += aux_result.metrics.retries
            failures.extend(aux_result.failures)
            resumed_chunks += aux_result.metrics.resumed_chunks
            pool_restarts += aux_result.metrics.pool_restarts
            bisections += aux_result.metrics.bisections
            watchdog_kills += aux_result.metrics.watchdog_kills
            frontier_downshifts += aux_result.metrics.frontier_downshifts
            cancelled = cancelled or aux_result.cancelled
            if salvage is None and aux_result.salvage is not None:
                salvage = aux_result.salvage
        elapsed = time.perf_counter() - started

    from repro.observe import metrics as om

    om.histogram("repro_execution_seconds",
                 "whole-execution wall time").observe(elapsed)
    result = ExecutionResult(
        accumulators, elapsed, plan.info.divisor, chunk_seconds, stats,
        failures=failures, retries=retries, resumed_chunks=resumed_chunks,
        pool_restarts=pool_restarts, cancelled=cancelled, salvage=salvage,
        bisections=bisections, watchdog_kills=watchdog_kills,
        frontier_downshifts=frontier_downshifts,
    )
    # Durable run history: one JSON line per execution when a ledger is
    # active (a single flag check otherwise).  Aux (global-shrinkage
    # correction) executions record under their own fingerprints.
    from repro.observe import ledger as ledger_mod

    record = ledger_mod.record_run(
        plan, graph, options, result, budget=policy_budget,
        checkpoint=checkpoint, supervised=supervised, aux=_IN_AUX,
    )
    if record is not None:
        result.run_id = record.run_id
    return result


#: True while an aux (shrinkage-correction) plan is being executed, so
#: its ledger record is distinguishable from the user-facing run's.
_IN_AUX = False


class _GovernorScope:
    """Tears a governed execution's resource plumbing back down: clears
    the SIGINT active-token slot, restores the caller's context hooks,
    and unlinks the shared cancel-token segment — on every exit path
    (success, ExecutionError, KeyboardInterrupt)."""

    def __init__(self, ctx, saved_resources, token) -> None:
        self.ctx = ctx
        self.saved_resources = saved_resources
        self.token = token

    def __enter__(self) -> "_GovernorScope":
        return self

    def __exit__(self, *exc_info) -> bool:
        from repro.runtime.resources import set_active_token

        set_active_token(None)
        self.ctx.resources, self.ctx.poll_cancel = self.saved_resources
        self.token.close()
        return False


def _make_policy(budget, checkpoint, supervised, resources=None):
    from repro.runtime.supervisor import RunPolicy

    return RunPolicy(budget=budget, checkpoint=checkpoint,
                     supervised=supervised, resources=resources)


def _run_range(plan, graph, ctx, start, stop, executor) -> dict[str, int]:
    if executor == "codegen":
        return plan.function(graph, ctx, start, stop)
    if executor == "interpreter":
        return run_interpreter(plan.root, graph, ctx, start, stop)
    if executor == "vectorized":
        return run_vectorized(plan.root, graph, ctx, start, stop)
    raise ExecutionError(
        f"unknown executor {executor!r}; expected one of {EXECUTORS}"
    )


# ----------------------------------------------------------------------
# Fork-based parallel execution
# ----------------------------------------------------------------------
#
# Fork state is keyed by a per-run token: each run registers its
# (plan, graph, ...) under a fresh token before forking its pool, and
# the pool initializer pins that token in every worker.  Children also
# inherit states registered by *other* concurrent runs (threads, nested
# executions) but only ever read their own — which is what makes
# concurrent/nested ``execute_plan`` calls safe.  A run's state stays
# registered until its pool is finished, because ``multiprocessing.Pool``
# re-forks replacement workers from the parent after a worker death.

_FORK_STATES: dict[int, dict] = {}
_WORKER_TOKEN: int | None = None
_TOKENS = itertools.count(1)


def _register_fork_state(state: dict) -> int:
    token = next(_TOKENS)
    _FORK_STATES[token] = state
    return token


def _release_fork_state(token: int) -> None:
    _FORK_STATES.pop(token, None)


def _set_worker_token(token: int) -> None:
    """Pool initializer: pin this worker to its run's fork state."""
    global _WORKER_TOKEN
    _WORKER_TOKEN = token


def _chunk_worker(task: tuple[int, int, int, int]):
    index, attempt, start, stop = task
    state = _FORK_STATES[_WORKER_TOKEN]
    plan = state["plan"]
    graph = state["graph"]
    if graph is None:
        # The run shares its graph: resolve the zero-copy shared-memory
        # view.  Fork children hit the cache entry seeded by the parent
        # and attach nothing; a worker forked fresh after a pool restart
        # does one real attach, then caches it for its lifetime.
        from repro.graph.shared import attach_cached

        graph = attach_cached(state["graph_descriptor"])
    executor = state["executor"]
    governor = state.get("resources")
    ctx = ExecutionContext(plan.root.num_tables,
                           predicates=state["predicates"],
                           cache=state.get("cache", True),
                           faults=state.get("faults"),
                           resources=governor)
    # A forked worker inherits the parent's tracing flag; its spans are
    # recorded into a fresh per-chunk trace and shipped back through the
    # result tuple (the parent grafts them into the live trace).
    worker_trace = begin_worker_trace(f"chunk-{index}")
    chunk_started = time.perf_counter()
    kernel_before = setops.STATS.snapshot()
    vec_before = vectorops.VSTATS.snapshot()
    with span("chunk", index=index, attempt=attempt,
              worker_pid=os.getpid()) as chunk_span:
        # Park immediately if the run was cancelled between dispatch and
        # pickup — no point starting a chunk the supervisor will discard.
        if governor is not None:
            governor.check_cancel()
        ctx.fire_faults(index, attempt)
        accumulators = _run_range(plan, graph, ctx, start, stop, executor)
    # One clock: under tracing the chunk's reported seconds ARE the span
    # window, so the parent's chunk-coverage accounting is exact.
    elapsed = chunk_span.duration or (time.perf_counter() - chunk_started)
    stats = setops.STATS.delta(kernel_before)
    _merge_stats(stats, vectorops.VSTATS.delta(vec_before))
    _merge_stats(stats, ctx.cache_counters())
    return (index, attempt, accumulators, elapsed, stats,
            take_worker_spans(worker_trace))


def _run_parallel(plan, graph, ctx, ranges, options: EngineOptions):
    import multiprocessing as mp

    stats: dict[str, int] = {}
    tasks = [(index, 1, start, stop)
             for index, (start, stop) in enumerate(ranges)]
    if not hasattr(os, "fork"):  # non-POSIX fallback
        merged: dict[str, int] = {}
        seconds = []
        for index, (start, stop) in enumerate(ranges):
            chunk_started = time.perf_counter()
            chunk_ctx = ExecutionContext(plan.root.num_tables,
                                         predicates=list(ctx.predicates),
                                         cache=options.cache)
            with span("chunk", index=index) as chunk_span:
                partial = _run_range(plan, graph, chunk_ctx, start, stop,
                                     options.executor)
            seconds.append(chunk_span.duration
                           or (time.perf_counter() - chunk_started))
            _merge_stats(stats, chunk_ctx.cache_counters())
            for key, value in partial.items():
                merged[key] = merged.get(key, 0) + value
        return merged, seconds, stats

    state = {
        "plan": plan, "graph": graph, "executor": options.executor,
        "predicates": list(ctx.predicates), "faults": ctx.faults,
        "cache": options.cache,
    }
    shared_handle = _share_state_graph(state, options.shared_graph)
    token = _register_fork_state(state)
    try:
        context = mp.get_context("fork")
        with context.Pool(processes=options.workers,
                          initializer=_set_worker_token,
                          initargs=(token,)) as pool:
            merged = {}
            seconds = []
            # imap_unordered drains the shared chunk queue dynamically:
            # an idle worker immediately picks up unstarted chunks, the
            # work-stealing behaviour of the paper's runtime.
            for (_, _, partial, chunk_time, chunk_stats,
                 chunk_spans) in pool.imap_unordered(_chunk_worker, tasks):
                seconds.append(chunk_time)
                _merge_stats(stats, chunk_stats)
                graft_worker_spans(chunk_spans)
                for key, value in partial.items():
                    merged[key] = merged.get(key, 0) + value
        return merged, seconds, stats
    finally:
        _release_fork_state(token)
        if shared_handle is not None:
            shared_handle.close()


def _share_state_graph(state: dict, enabled: bool = True):
    """Move a fork state's graph into shared memory (when enabled).

    Replaces ``state["graph"]`` with ``None`` plus a picklable
    ``graph_descriptor``; :func:`_chunk_worker` resolves it via the
    attach cache.  Returns the owning handle — the caller MUST close it
    in a ``finally`` spanning the pool's whole lifetime (pool restarts
    re-fork from the parent and must still find the segment).
    """
    if not enabled:
        return None
    descriptor = getattr(state["graph"], "shared_descriptor", None)
    if descriptor is not None:
        # The graph is already a view over a long-lived shared segment
        # (the serve daemon holds one for its whole lifetime): point
        # workers at it and leave ownership — and cleanup — with the
        # holder.
        state["graph"] = None
        state["graph_descriptor"] = descriptor
        return None
    from repro.graph import shared

    handle = shared.share_graph(state["graph"])
    state["graph"] = None
    state["graph_descriptor"] = handle.descriptor
    return handle
