"""Frequent Subgraph Mining with MNI support (paper sections 4.1, 8.1).

FSM discovers all labeled patterns whose *MNI support* — the size of the
smallest per-vertex domain over all embeddings (Figure 7) — reaches a
user threshold.  Mining proceeds level-wise over edge counts: frequent
single-edge patterns seed the search, and each level extends frequent
patterns by one edge (a new leaf vertex or a closing edge), relying on the
anti-monotonicity of MNI support for pruning.

Domains are obtained through the miner's ``domains`` hook; for DecoMine
that is the partial-embedding API — the whole point of section 4: domains
need only the pattern-vertex ↦ graph-vertex mapping, never whole
materialized embeddings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.apps.interface import Miner
from repro.graph.csr import CSRGraph
from repro.patterns.isomorphism import canonical_code
from repro.patterns.pattern import Pattern

__all__ = ["FrequentPattern", "FSMResult", "frequent_subgraph_mining"]

#: The paper mines "frequent patterns with less than four edges".
DEFAULT_MAX_EDGES = 3


@dataclass(frozen=True)
class FrequentPattern:
    pattern: Pattern
    support: int


@dataclass
class FSMResult:
    frequent: list[FrequentPattern] = field(default_factory=list)
    candidates_examined: int = 0
    min_support: int = 0
    max_edges: int = DEFAULT_MAX_EDGES

    @property
    def num_frequent(self) -> int:
        return len(self.frequent)

    def patterns_with_edges(self, edges: int) -> list[FrequentPattern]:
        return [f for f in self.frequent if f.pattern.num_edges == edges]


def mni_support(domains: dict[int, set[int]]) -> int:
    """MNI support: size of the smallest vertex domain (Figure 7)."""
    if not domains:
        return 0
    return min(len(values) for values in domains.values())


def frequent_subgraph_mining(
    miner: Miner,
    graph: CSRGraph,
    min_support: int,
    max_edges: int = DEFAULT_MAX_EDGES,
) -> FSMResult:
    """Mine all frequent labeled patterns with at most ``max_edges`` edges."""
    if not graph.is_labeled:
        raise ValueError("FSM requires a labeled input graph")
    result = FSMResult(min_support=min_support, max_edges=max_edges)

    frontier = _frequent_edges(miner, graph, min_support, result)
    result.frequent.extend(frontier)
    frequent_pairs = {
        _label_pair(item.pattern) for item in frontier
    }

    for _level in range(2, max_edges + 1):
        candidates = _extend_all(frontier, frequent_pairs)
        frontier = []
        for candidate in candidates:
            result.candidates_examined += 1
            support = mni_support(miner.domains(candidate))
            if support >= min_support:
                frontier.append(FrequentPattern(candidate, support))
        result.frequent.extend(frontier)
        if not frontier:
            break
    return result


# ----------------------------------------------------------------------
# Level 1: single labeled edges
# ----------------------------------------------------------------------

def _label_pair(pattern: Pattern) -> tuple[int, int]:
    a, b = pattern.labels  # type: ignore[misc]
    return (a, b) if a <= b else (b, a)


def _frequent_edges(miner, graph, min_support, result) -> list[FrequentPattern]:
    present: set[tuple[int, int]] = set()
    for u, v in graph.edges():
        la, lb = graph.label_of(u), graph.label_of(v)
        present.add((min(la, lb), max(la, lb)))
    frequent = []
    for la, lb in sorted(present):
        pattern = Pattern(2, [(0, 1)], labels=[la, lb],
                          name=f"edge[{la}-{lb}]")
        result.candidates_examined += 1
        support = mni_support(miner.domains(pattern))
        if support >= min_support:
            frequent.append(FrequentPattern(pattern, support))
    return frequent


# ----------------------------------------------------------------------
# Extension: one new edge per level
# ----------------------------------------------------------------------

def _extend_all(
    frontier: list[FrequentPattern],
    frequent_pairs: set[tuple[int, int]],
) -> list[Pattern]:
    seen: set = set()
    candidates: list[Pattern] = []
    for item in frontier:
        for candidate in _extensions(item.pattern, frequent_pairs):
            code = canonical_code(candidate)
            if code not in seen:
                seen.add(code)
                candidates.append(candidate)
    return candidates


def _extensions(pattern: Pattern, frequent_pairs):
    """One-edge extensions: close an internal edge or grow a leaf.

    A grown leaf's (anchor label, leaf label) pair must itself be a
    frequent edge — the standard downward-closure prune.
    """
    # (a) close an edge between existing non-adjacent vertices.
    for u, v in itertools.combinations(range(pattern.n), 2):
        if not pattern.has_edge(u, v):
            yield pattern.with_edge(u, v)
    # (b) attach a new labeled leaf to each vertex.
    leaf_labels_by_anchor: dict[int, set[int]] = {}
    for la, lb in frequent_pairs:
        leaf_labels_by_anchor.setdefault(la, set()).add(lb)
        leaf_labels_by_anchor.setdefault(lb, set()).add(la)
    assert pattern.labels is not None
    for anchor in range(pattern.n):
        anchor_label = pattern.labels[anchor]
        for leaf_label in sorted(leaf_labels_by_anchor.get(anchor_label, ())):
            yield Pattern(
                pattern.n + 1,
                list(pattern.edge_set) + [(anchor, pattern.n)],
                labels=list(pattern.labels) + [leaf_label],
            )
