"""The options redesign keeps every pre-redesign spelling alive for one
release behind :class:`DeprecationWarning` shims.  These tests pin both
halves of that contract: the old spellings *warn*, and they still
*work* — routed onto :class:`EngineOptions` / :class:`RunPolicy` /
``ExecutionResult.metrics`` with unchanged behavior.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.api.session import DecoMine
from repro.baselines import reference
from repro.compiler.pipeline import compile_pattern
from repro.costmodel import profile_graph
from repro.exceptions import ExecutionError
from repro.graph.generators import erdos_renyi
from repro.patterns import catalog
from repro.runtime.engine import (
    EngineOptions,
    ExecutionResult,
    execute_plan,
)


@pytest.fixture(scope="module")
def case():
    graph = erdos_renyi(16, 0.35, seed=3)
    profile = profile_graph(graph, max_pattern_size=3, trials=60)
    plan = compile_pattern(catalog.house(), profile)
    expected = reference.count_embeddings(graph, catalog.house())
    return graph, plan, expected


class TestEngineOptionsValidation:
    @pytest.mark.parametrize("kwargs, fragment", [
        ({"workers": 0}, "workers must be >= 1, got 0"),
        ({"workers": -2}, "workers must be >= 1, got -2"),
        ({"chunks_per_worker": 0}, "chunks_per_worker must be >= 1, got 0"),
        ({"executor": "llvm"}, "unknown executor 'llvm'"),
    ])
    def test_invalid_options_raise(self, kwargs, fragment):
        with pytest.raises(ExecutionError, match=fragment):
            EngineOptions(**kwargs)

    def test_defaults(self):
        options = EngineOptions()
        assert options.workers == 1
        assert options.chunks_per_worker == 4
        assert options.executor == "codegen"
        assert options.cache is True
        assert options.faults is None


class TestExecutePlanLegacyKwargs:
    def test_workers_kwarg_warns_and_routes(self, case):
        graph, plan, expected = case
        with pytest.warns(DeprecationWarning,
                          match="workers=.*deprecated.*EngineOptions"):
            result = execute_plan(plan, graph, workers=2,
                                  chunks_per_worker=3)
        assert result.embedding_count == expected
        # Routed: 2 workers x 3 chunks_per_worker chunks were produced.
        assert len(result.chunk_seconds) == 6

    def test_executor_kwarg_warns_and_routes(self, case):
        graph, plan, expected = case
        with pytest.warns(DeprecationWarning, match="executor="):
            result = execute_plan(plan, graph, executor="interpreter")
        assert result.embedding_count == expected

    def test_invalid_legacy_values_still_validate(self, case):
        graph, plan, _ = case
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ExecutionError,
                               match="workers must be >= 1"):
                execute_plan(plan, graph, workers=0)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ExecutionError, match="unknown executor"):
                execute_plan(plan, graph, executor="gpu")

    def test_legacy_kwargs_override_options_bundle(self, case):
        graph, plan, expected = case
        with pytest.warns(DeprecationWarning):
            result = execute_plan(
                plan, graph, options=EngineOptions(workers=2,
                                                   chunks_per_worker=2),
                chunks_per_worker=4,
            )
        assert result.embedding_count == expected
        assert len(result.chunk_seconds) == 8  # 2 workers x overridden 4

    def test_checkpoint_kwarg_warns_and_routes(self, case, tmp_path):
        graph, plan, expected = case
        path = str(tmp_path / "legacy.jsonl")
        with pytest.warns(DeprecationWarning,
                          match="checkpoint=/supervised=.*RunPolicy"):
            result = execute_plan(plan, graph, checkpoint=path)
        assert result.embedding_count == expected
        assert Path(path).exists()  # checkpoint really was written

    def test_supervised_kwarg_warns_and_routes(self, case):
        graph, plan, expected = case
        with pytest.warns(DeprecationWarning,
                          match="checkpoint=/supervised="):
            result = execute_plan(plan, graph, supervised=True)
        assert result.embedding_count == expected

    def test_new_spellings_do_not_warn(self, case):
        graph, plan, expected = case
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = execute_plan(
                plan, graph, options=EngineOptions(workers=2),
            )
        assert result.embedding_count == expected


class TestSessionLegacyKwargs:
    def test_workers_and_executor_warn_and_route(self, case):
        graph, _, expected = case
        with pytest.warns(DeprecationWarning,
                          match="DecoMine.*deprecated.*EngineOptions"):
            session = DecoMine(graph, workers=2, executor="interpreter")
        assert session.engine_options.workers == 2
        assert session.engine_options.executor == "interpreter"
        assert session.get_pattern_count(catalog.house()) == expected

    def test_deprecated_attribute_spellings(self, case):
        graph, _, _ = case
        session = DecoMine(graph, engine=EngineOptions(workers=3))
        with pytest.warns(DeprecationWarning, match="DecoMine.workers"):
            assert session.workers == 3
        with pytest.warns(DeprecationWarning, match="DecoMine.executor"):
            assert session.executor == "codegen"

    def test_engine_bundle_does_not_warn(self, case):
        graph, _, expected = case
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = DecoMine(graph, engine=EngineOptions(workers=1))
            assert session.get_pattern_count(catalog.house()) == expected


class TestResultAliasShims:
    def _result(self):
        return ExecutionResult(
            {"acc_count": 12}, 0.5, 2,
            kernel_stats={"cache_hits": 3, "cache_misses": 1,
                          "intersect_merge": 7},
            retries=4, resumed_chunks=2, pool_restarts=1,
        )

    @pytest.mark.parametrize("alias", [
        "kernel_stats", "cache_hit_rate", "kernel_calls",
        "retries", "resumed_chunks", "pool_restarts",
    ])
    def test_alias_warns_and_matches_metrics(self, alias):
        result = self._result()
        with pytest.warns(DeprecationWarning,
                          match=rf"ExecutionResult\.{alias} is deprecated"):
            old = getattr(result, alias)
        new = getattr(result.metrics, alias)
        assert old == new

    def test_metrics_access_does_not_warn(self):
        result = self._result()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert result.metrics.retries == 4
            assert result.metrics.kernel_stats["cache_hits"] == 3
            assert result.metrics.cache_hit_rate == pytest.approx(0.75)
