"""In-house AutoMine re-implementation (the paper's AutoMineInHouse).

AutoMine [Mawhirter & Wu, SOSP'19] compiles pattern-specific nested-loop
enumerators, choosing matching orders with its random-graph ``G(n, p)``
cost model.  It performs no pattern decomposition — the gap between this
system and DecoMine on the same substrate is the paper's headline result
(Table 3).  All the standard optimizations are on: set-based candidate
generation, symmetry breaking, innermost-loop elision, LICM/CSE.
"""

from __future__ import annotations

from repro.baselines.common import DirectPlanSystem
from repro.compiler.specs import DirectSpec
from repro.costmodel import AutoMineCostModel, estimate_cost
from repro.compiler.build import build_ast
from repro.compiler.passes import optimize
from repro.patterns.isomorphism import automorphism_count
from repro.patterns.matching_order import cap_orders, connected_orders
from repro.patterns.pattern import Pattern
from repro.patterns.symmetry import symmetry_breaking_restrictions

__all__ = ["AutoMineInHouse"]


class AutoMineInHouse(DirectPlanSystem):
    name = "automine"

    def __init__(self, graph, profile=None, max_orders: int = 6,
                 computation_reuse: bool = True) -> None:
        super().__init__(graph, profile)
        self.model = AutoMineCostModel()
        self.max_orders = max_orders
        self.computation_reuse = computation_reuse

    def motif_census(self, k: int) -> dict[Pattern, int]:
        """Census with computation reuse (paper section 2.2, opt. 2):
        the per-pattern plans are merged into one tree whose shared loop
        prefixes run once."""
        if not self.computation_reuse:
            return super().motif_census(k)
        from repro.compiler.codegen import compile_root
        from repro.compiler.multi import build_merged_direct
        from repro.patterns.generation import all_connected_patterns
        from repro.runtime.context import ExecutionContext

        patterns = all_connected_patterns(k)
        specs = [
            self.select_spec(pattern, induced=True, mode="count")
            for pattern in patterns
        ]
        merged = build_merged_direct(specs, passes=self.passes)
        function, _source = compile_root(merged.root)
        accumulators = function(self.graph, ExecutionContext())
        return {
            pattern: accumulators[merged.accumulator_for(i)] // merged.divisors[i]
            for i, pattern in enumerate(patterns)
        }

    def select_spec(self, pattern: Pattern, induced: bool, mode: str) -> DirectSpec:
        restrictions: tuple = ()
        if automorphism_count(pattern) > 1:
            restrictions = tuple(symmetry_breaking_restrictions(pattern))
        best_spec = None
        best_cost = None
        for order in cap_orders(connected_orders(pattern), self.max_orders):
            spec = DirectSpec(pattern, order, restrictions=restrictions,
                              induced=induced)
            root, _ = build_ast(spec, "count")
            optimize(root, self.passes)
            cost = estimate_cost(root, self.profile, self.model)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_spec = spec
        assert best_spec is not None
        return best_spec
