"""Perf trajectory: a commit-by-commit series of benchmark points.

Each benchmark invocation can append one **trajectory point** — a root
``BENCH_<seq>.json`` file recording, per workload, the median-of-k wall
time and its dispersion, plus the git commit and host the point was
measured on.  The series is the repository's performance memory:
``repro perf check`` compares the newest point against a baseline and
flags regressions with a noise-aware threshold, so a slowdown is caught
by CI before it lands rather than discovered archaeologically.

Detection rule (per workload): a regression is flagged iff

    new_median - base_median >
        max(threshold_pct/100 * base_median,
            noise_mult * (base_dispersion + new_dispersion))

i.e. the slowdown must clear *both* a relative bar and a bar scaled to
the measured run-to-run noise of the two points.  Dispersion is the
median absolute deviation of the k repeats — robust to the odd outlier
repeat the way the median itself is.  Back-to-back identical runs
therefore pass: their medians differ by at most the recorded noise.

Schema (``TRAJECTORY_VERSION`` 1)::

    {"version": 1, "suite": "smoke", "seq": 3, "created": <epoch>,
     "commit": "abc1234" | null,
     "host": {"node": ..., "machine": ..., "python": ..., "cpus": ...},
     "workloads": [{"name": "house@wikivote", "seconds": 0.123,
                    "dispersion": 0.004, "repeats": 5, "value": 9}, ...]}
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.bench.harness import median, repeat_call, spread
from repro.bench.reporting import Table
from repro.exceptions import ReproError

__all__ = [
    "TRAJECTORY_VERSION",
    "BENCH_FILE_RE",
    "WorkloadPoint",
    "TrajectoryPoint",
    "Regression",
    "ComparisonReport",
    "measure_suite",
    "smoke_suite",
    "write_point",
    "load_points",
    "load_point",
    "next_bench_path",
    "compare_points",
    "validate_point",
]

TRAJECTORY_VERSION = 1

#: Trajectory files live at the repository root as ``BENCH_0001.json``,
#: ``BENCH_0002.json``, ... — the sequence number orders the series.
BENCH_FILE_RE = re.compile(r"BENCH_(\d{4})\.json\Z")

#: Default regression bars (see module docstring for the rule).
DEFAULT_THRESHOLD_PCT = 20.0
DEFAULT_NOISE_MULT = 3.0


@dataclass(frozen=True)
class WorkloadPoint:
    """One workload's measurement inside a trajectory point."""

    name: str
    seconds: float
    dispersion: float
    repeats: int
    value: object = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "dispersion": self.dispersion,
            "repeats": self.repeats,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "WorkloadPoint":
        return cls(
            name=str(record["name"]),
            seconds=float(record["seconds"]),
            dispersion=float(record.get("dispersion", 0.0)),
            repeats=int(record.get("repeats", 1)),
            value=record.get("value"),
        )


@dataclass
class TrajectoryPoint:
    """One ``BENCH_<seq>.json`` file: a suite measured at one commit."""

    suite: str
    workloads: list[WorkloadPoint]
    created: float = 0.0
    commit: str | None = None
    host: dict = field(default_factory=dict)
    seq: int | None = None

    def workload(self, name: str) -> WorkloadPoint | None:
        for point in self.workloads:
            if point.name == name:
                return point
        return None

    def to_dict(self) -> dict:
        return {
            "version": TRAJECTORY_VERSION,
            "suite": self.suite,
            "seq": self.seq,
            "created": self.created,
            "commit": self.commit,
            "host": dict(self.host),
            "workloads": [w.to_dict() for w in self.workloads],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TrajectoryPoint":
        errors = validate_point(record)
        if errors:
            raise ReproError(
                "invalid trajectory point: " + "; ".join(errors)
            )
        return cls(
            suite=str(record["suite"]),
            workloads=[
                WorkloadPoint.from_dict(w) for w in record["workloads"]
            ],
            created=float(record.get("created", 0.0)),
            commit=record.get("commit"),
            host=dict(record.get("host", {})),
            seq=record.get("seq"),
        )


def validate_point(record: object) -> list[str]:
    """Schema-check one trajectory dict; returns human-readable errors."""
    errors: list[str] = []
    if not isinstance(record, dict):
        return [f"expected a JSON object, got {type(record).__name__}"]
    version = record.get("version")
    if version != TRAJECTORY_VERSION:
        errors.append(
            f"version must be {TRAJECTORY_VERSION}, got {version!r}"
        )
    if not isinstance(record.get("suite"), str) or not record.get("suite"):
        errors.append("suite must be a non-empty string")
    workloads = record.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        errors.append("workloads must be a non-empty list")
        workloads = []
    for i, workload in enumerate(workloads):
        if not isinstance(workload, dict):
            errors.append(f"workloads[{i}] must be an object")
            continue
        if not isinstance(workload.get("name"), str):
            errors.append(f"workloads[{i}].name must be a string")
        for key in ("seconds", "dispersion"):
            value = workload.get(key, 0.0)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(
                    f"workloads[{i}].{key} must be a non-negative number"
                )
        repeats = workload.get("repeats", 1)
        if not isinstance(repeats, int) or repeats < 1:
            errors.append(f"workloads[{i}].repeats must be a positive int")
    host = record.get("host", {})
    if not isinstance(host, dict):
        errors.append("host must be an object")
    commit = record.get("commit")
    if commit is not None and not isinstance(commit, str):
        errors.append("commit must be a string or null")
    return errors


# ----------------------------------------------------------------------
# Measuring
# ----------------------------------------------------------------------

def git_commit(root: "str | os.PathLike | None" = None) -> str | None:
    """Short hash of HEAD, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def host_info() -> dict:
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
    }


def measure_suite(
    suite: str,
    workloads: dict[str, Callable[[], object]],
    repeats: int = 3,
    root: "str | os.PathLike | None" = None,
) -> TrajectoryPoint:
    """Measure every workload ``repeats`` times; median + dispersion.

    Each callable is invoked once, unmeasured, before timing starts, so
    plan caches and profiling warm exactly as the paper amortizes them
    (section 8.2) and the repeats measure steady-state execution.
    """
    points = []
    for name, fn in workloads.items():
        value = fn()  # warmup: populate plan caches / profile
        seconds = repeat_call(fn, repeats=repeats)
        points.append(WorkloadPoint(
            name=name,
            seconds=median(seconds),
            dispersion=spread(seconds),
            repeats=repeats,
            value=value if isinstance(value, (int, float, str)) else None,
        ))
    return TrajectoryPoint(
        suite=suite,
        workloads=points,
        created=time.time(),
        commit=git_commit(root),
        host=host_info(),
    )


def smoke_suite() -> dict[str, Callable[[], object]]:
    """The small CI-safe workload set (`repro perf run --suite smoke`).

    Counting workloads over the built-in dataset analogues, sized so the
    whole suite (warmup + repeats) finishes in well under a minute.
    """
    from repro.bench.workloads import session_for
    from repro.graph import datasets
    from repro.patterns import catalog

    wikivote = datasets.load("wikivote")
    mico = datasets.load("mico")

    def workload(graph, pattern):
        session = session_for(graph)
        return lambda: session.get_pattern_count(pattern)

    return {
        "triangle@wikivote": workload(wikivote, catalog.triangle()),
        "house@wikivote": workload(wikivote, catalog.house()),
        "tailed-triangle@mico": workload(mico, catalog.tailed_triangle()),
    }


def vectorized_suite() -> dict[str, Callable[[], object]]:
    """The vectorized executor's trajectory (`--suite vectorized`).

    The smoke workloads re-run on ``executor="vectorized"``, plus the
    intersection-heavy shapes the batched kernels exist for — so a
    kernel regression (a lost fast path, an extra gather) moves this
    series even when the codegen numbers in ``smoke`` hold still.
    """
    from repro.bench.workloads import session_for
    from repro.graph import datasets
    from repro.patterns import catalog

    wikivote = datasets.load("wikivote")
    mico = datasets.load("mico")

    def workload(graph, pattern):
        session = session_for(graph, executor="vectorized")
        return lambda: session.get_pattern_count(pattern)

    return {
        "triangle@wikivote": workload(wikivote, catalog.triangle()),
        "house@wikivote": workload(wikivote, catalog.house()),
        "tailed-triangle@mico": workload(mico, catalog.tailed_triangle()),
        "clique4@wikivote": workload(wikivote, catalog.clique(4)),
        "cycle4@mico": workload(mico, catalog.cycle(4)),
    }


SUITES: dict[str, Callable[[], dict]] = {
    "smoke": smoke_suite,
    "vectorized": vectorized_suite,
}


# ----------------------------------------------------------------------
# The on-disk series
# ----------------------------------------------------------------------

def _bench_files(root: "str | os.PathLike") -> list[tuple[int, Path]]:
    out = []
    for entry in Path(root).iterdir():
        match = BENCH_FILE_RE.match(entry.name)
        if match:
            out.append((int(match.group(1)), entry))
    return sorted(out)


def next_bench_path(root: "str | os.PathLike") -> Path:
    files = _bench_files(root)
    seq = files[-1][0] + 1 if files else 1
    return Path(root) / f"BENCH_{seq:04d}.json"


def write_point(point: TrajectoryPoint,
                root: "str | os.PathLike" = ".") -> Path:
    """Append ``point`` to the series as the next ``BENCH_<seq>.json``."""
    path = next_bench_path(root)
    point.seq = int(BENCH_FILE_RE.match(path.name).group(1))
    path.write_text(json.dumps(point.to_dict(), indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path


def load_point(path: "str | os.PathLike") -> TrajectoryPoint:
    try:
        record = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ReproError(f"no trajectory file at {path}") from None
    except ValueError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from None
    return TrajectoryPoint.from_dict(record)


def load_points(root: "str | os.PathLike" = ".") -> list[TrajectoryPoint]:
    """Every ``BENCH_<seq>.json`` under ``root``, in sequence order."""
    return [load_point(path) for _, path in _bench_files(root)]


# ----------------------------------------------------------------------
# Regression detection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Regression:
    """One workload that slowed past both bars."""

    name: str
    base_seconds: float
    new_seconds: float
    allowed_delta: float

    @property
    def slowdown_pct(self) -> float:
        if self.base_seconds <= 0:
            return float("inf")
        return 100.0 * (self.new_seconds - self.base_seconds) / (
            self.base_seconds
        )

    def describe(self) -> str:
        return (f"{self.name}: {self.base_seconds:.4f}s -> "
                f"{self.new_seconds:.4f}s (+{self.slowdown_pct:.1f}%, "
                f"allowed +{self.allowed_delta:.4f}s)")


@dataclass
class ComparisonReport:
    """Outcome of comparing a candidate point against a baseline."""

    baseline: TrajectoryPoint
    candidate: TrajectoryPoint
    regressions: list[Regression]
    compared: list[str]
    missing: list[str]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        table = Table(
            f"perf check: {self.candidate.suite} vs baseline "
            f"(commit {self.baseline.commit or '?'} -> "
            f"{self.candidate.commit or '?'})",
            ["workload", "baseline", "candidate", "delta", "verdict"],
        )
        flagged = {r.name for r in self.regressions}
        for name in self.compared:
            base = self.baseline.workload(name)
            new = self.candidate.workload(name)
            delta_pct = (
                100.0 * (new.seconds - base.seconds) / base.seconds
                if base.seconds else float("inf")
            )
            table.add_row(
                name, f"{base.seconds:.4f}s", f"{new.seconds:.4f}s",
                f"{delta_pct:+.1f}%",
                "REGRESSION" if name in flagged else "ok",
            )
        for name in self.missing:
            table.add_note(f"{name}: present in only one point, skipped")
        if self.ok:
            table.add_note("no regressions")
        return table.render()


def compare_points(
    baseline: TrajectoryPoint,
    candidate: TrajectoryPoint,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    noise_mult: float = DEFAULT_NOISE_MULT,
) -> ComparisonReport:
    """Noise-aware regression check (see module docstring for the rule)."""
    regressions: list[Regression] = []
    compared: list[str] = []
    missing: list[str] = []
    seen = set()
    for base in baseline.workloads:
        new = candidate.workload(base.name)
        seen.add(base.name)
        if new is None:
            missing.append(base.name)
            continue
        compared.append(base.name)
        allowed = max(
            threshold_pct / 100.0 * base.seconds,
            noise_mult * (base.dispersion + new.dispersion),
        )
        if new.seconds - base.seconds > allowed:
            regressions.append(Regression(
                name=base.name,
                base_seconds=base.seconds,
                new_seconds=new.seconds,
                allowed_delta=allowed,
            ))
    for new in candidate.workloads:
        if new.name not in seen:
            missing.append(new.name)
    return ComparisonReport(
        baseline=baseline,
        candidate=candidate,
        regressions=regressions,
        compared=compared,
        missing=missing,
    )
