"""GraphPi re-implementation [Shi et al., SC'20].

GraphPi's two contributions over earlier pattern-aware systems:

* it searches *both* the matching order and the symmetry-breaking
  restriction set with a cost model (different valid restriction sets
  perform differently);
* a "pattern counting mathematical optimization" that computes the
  innermost loop's contribution arithmetically instead of iterating —
  realized here by the counting-loop elision pass, which is toggled by
  ``count_optimization`` to reproduce the paper's GraphPi vs
  GraphPi(count) split (Figure 14).
"""

from __future__ import annotations

from repro.baselines.common import DirectPlanSystem
from repro.compiler.build import build_ast
from repro.compiler.passes import PassOptions, optimize
from repro.compiler.specs import DirectSpec
from repro.costmodel import LocalityAwareCostModel, estimate_cost
from repro.patterns.matching_order import cap_orders, connected_orders
from repro.patterns.pattern import Pattern
from repro.patterns.symmetry import restriction_set_candidates

__all__ = ["GraphPi"]


class GraphPi(DirectPlanSystem):
    def __init__(
        self,
        graph,
        profile=None,
        count_optimization: bool = True,
        max_orders: int = 6,
        max_restriction_sets: int = 4,
    ) -> None:
        passes = PassOptions() if count_optimization else PassOptions(elide=False)
        super().__init__(graph, profile, passes=passes)
        self.count_optimization = count_optimization
        self.model = LocalityAwareCostModel()
        self.max_orders = max_orders
        self.max_restriction_sets = max_restriction_sets

    @property
    def name(self) -> str:  # type: ignore[override]
        return "graphpi(count)" if self.count_optimization else "graphpi"

    def select_spec(self, pattern: Pattern, induced: bool, mode: str) -> DirectSpec:
        restriction_sets = restriction_set_candidates(
            pattern, limit=self.max_restriction_sets
        ) or [[]]
        best_spec = None
        best_cost = None
        for order in cap_orders(connected_orders(pattern), self.max_orders):
            for restrictions in restriction_sets:
                spec = DirectSpec(
                    pattern, order, restrictions=tuple(restrictions),
                    induced=induced,
                )
                root, _ = build_ast(spec, "count")
                optimize(root, self.passes)
                cost = estimate_cost(root, self.profile, self.model)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_spec = spec
        assert best_spec is not None
        return best_spec
