"""Codegen/interpreter differential tests plus runtime engine tests."""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.baselines import reference
from repro.compiler.build import COUNT_ACC, build_ast
from repro.compiler.codegen import compile_root, generate_source
from repro.compiler.interpreter import run_interpreter
from repro.compiler.passes import optimize
from repro.compiler.pipeline import compile_spec
from repro.compiler.specs import DecompSpec, DirectSpec
from repro.patterns import catalog
from repro.patterns.decomposition import all_decompositions
from repro.patterns.generation import all_connected_patterns
from repro.patterns.matching_order import connected_orders, extension_orders
from repro.runtime.context import ExecutionContext
from repro.runtime.engine import EngineOptions, chunk_ranges, execute_plan
from repro.runtime.hashtable import NaiveTable, ShrinkageTable


def decomp_spec(pattern, which=0, plr_k=0):
    deco = all_decompositions(pattern)[which]
    ext = tuple(
        extension_orders(pattern, deco.cutting_set, s.component)[0]
        for s in deco.subpatterns
    )
    return DecompSpec(deco, deco.cutting_set, ext, plr_k=plr_k)


class TestCodegen:
    @pytest.mark.parametrize("size", [3, 4])
    def test_codegen_matches_interpreter(self, size, small_random_graph):
        for pattern in all_connected_patterns(size):
            specs = [DirectSpec(pattern, connected_orders(pattern)[0])]
            if all_decompositions(pattern):
                specs.append(decomp_spec(pattern))
            for spec in specs:
                for mode in ("count", "emit"):
                    root, _ = build_ast(spec, mode)
                    optimize(root)

                    def run(use_codegen):
                        emitted = defaultdict(int)
                        ctx = ExecutionContext(
                            root.num_tables,
                            emit=lambda i, v, c: emitted.__setitem__(
                                (i, v), emitted[(i, v)] + c
                            ),
                        )
                        if use_codegen:
                            fn, _ = compile_root(root)
                            acc = fn(small_random_graph, ctx)
                        else:
                            acc = run_interpreter(root, small_random_graph, ctx)
                        return acc[COUNT_ACC], dict(emitted)

                    assert run(True) == run(False), (pattern.name, mode)

    def test_source_is_readable_python(self):
        spec = decomp_spec(catalog.chain(4))
        root, _ = build_ast(spec, "count")
        optimize(root)
        source = generate_source(root)
        assert source.startswith("def _plan(")
        compile(source, "<test>", "exec")  # must parse

    def test_chunked_execution_sums_to_full(self, small_random_graph):
        spec = decomp_spec(catalog.cycle(4))
        root, _ = build_ast(spec, "count")
        optimize(root)
        fn, _ = compile_root(root)
        full = fn(small_random_graph, ExecutionContext())[COUNT_ACC]
        n = small_random_graph.num_vertices
        total = sum(
            fn(small_random_graph, ExecutionContext(), start, stop)[COUNT_ACC]
            for start, stop in chunk_ranges(n, 5)
        )
        assert total == full


class TestEngine:
    def test_chunk_ranges_cover_exactly(self):
        ranges = chunk_ranges(17, 4)
        covered = [i for start, stop in ranges for i in range(start, stop)]
        assert covered == list(range(17))

    def test_chunk_ranges_degenerate(self):
        assert chunk_ranges(0, 4) == []
        assert chunk_ranges(3, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_execute_plan_counting(self, small_random_graph):
        pattern = catalog.cycle(4)
        plan = compile_spec(decomp_spec(pattern))
        result = execute_plan(plan, small_random_graph)
        assert result.embedding_count == reference.count_embeddings(
            small_random_graph, pattern
        )
        assert result.seconds > 0

    def test_execute_plan_interpreter_backend(self, small_random_graph):
        pattern = catalog.chain(4)
        plan = compile_spec(decomp_spec(pattern))
        a = execute_plan(plan, small_random_graph,
                         options=EngineOptions(executor="codegen"))
        b = execute_plan(plan, small_random_graph,
                         options=EngineOptions(executor="interpreter"))
        assert a.embedding_count == b.embedding_count

    def test_unknown_executor_rejected(self, small_random_graph):
        from repro.exceptions import ExecutionError

        plan = compile_spec(decomp_spec(catalog.chain(3)))
        with pytest.raises(ExecutionError):
            execute_plan(plan, small_random_graph,
                         options=EngineOptions(executor="jit"))

    def test_parallel_execution_matches_serial(self, medium_random_graph):
        pattern = catalog.cycle(4)
        plan = compile_spec(decomp_spec(pattern))
        serial = execute_plan(plan, medium_random_graph,
                              options=EngineOptions(workers=1))
        parallel = execute_plan(plan, medium_random_graph,
                                options=EngineOptions(workers=2))
        assert parallel.raw_count == serial.raw_count
        assert len(parallel.chunk_seconds) > 1
        assert 0.0 < parallel.work_balance() <= 1.0

    def test_emit_mode_rejects_parallel(self, small_random_graph):
        # An ExecutionError (a ReproError) so callers catch engine
        # errors uniformly.
        from repro.exceptions import ExecutionError, ReproError

        plan = compile_spec(decomp_spec(catalog.chain(3)), mode="emit")
        with pytest.raises(ExecutionError):
            execute_plan(plan, small_random_graph,
                         options=EngineOptions(workers=2))
        with pytest.raises(ReproError):
            execute_plan(plan, small_random_graph,
                         options=EngineOptions(workers=2))


class TestHashTables:
    @pytest.mark.parametrize("table_cls", [ShrinkageTable, NaiveTable])
    def test_basic_semantics(self, table_cls):
        table = table_cls()
        table.add(("a",))
        table.add(("a",))
        table.add(("b",), 3)
        assert table.get(("a",)) == 2
        assert table.get(("b",)) == 3
        assert table.get(("missing",)) == 0
        table.clear()
        assert table.get(("a",)) == 0

    def test_stamp_clear_is_lazy(self):
        table = ShrinkageTable()
        table.add((1,))
        table.clear()
        # The stale entry is physically present but logically invisible.
        assert table.get((1,)) == 0
        assert len(table) == 0
        table.add((1,))
        assert table.get((1,)) == 1

    def test_many_clears_cheap_and_correct(self):
        table = ShrinkageTable()
        for round_index in range(500):
            table.clear()
            table.add((round_index % 3,))
            assert table.get((round_index % 3,)) == 1
            assert table.get(((round_index + 1) % 3,)) == 0
        assert table.clears == 500

    def test_overflow_reinitializes(self, monkeypatch):
        import repro.runtime.hashtable as ht

        monkeypatch.setattr(ht, "_STAMP_LIMIT", 3)
        table = ShrinkageTable()
        for _ in range(5):
            table.clear()
            table.add(("x",))
        assert table.full_resets >= 1
        assert table.get(("x",)) == 1

    def test_tables_interchangeable_in_execution(self, small_random_graph):
        pattern = catalog.house()
        spec = decomp_spec(pattern)
        root, info = build_ast(spec, "emit")
        optimize(root)
        fn, _ = compile_root(root)

        def run(naive):
            got = defaultdict(int)
            ctx = ExecutionContext(
                root.num_tables, naive_tables=naive,
                emit=lambda i, v, c: got.__setitem__((i, v), got[(i, v)] + c),
            )
            fn(small_random_graph, ctx)
            return dict(got)

        assert run(False) == run(True)
