"""Differential fault-injection suite for the execution supervisor.

The lock on the recovery machinery: for every catalog pattern, a
parallel run with seeded worker deaths + chunk exceptions + delays
(retries enabled) must produce the *exact* embedding count of the
fault-free reference run, and a killed-then-resumed checkpointed run
must match as well.  Faults default to firing on attempt 1 only, so a
retried chunk succeeds and the fault-free count is recoverable; chunk
re-execution is sound because the counting accumulators are associative
and commutative.

The suite reuses the catalog from ``test_differential_engines`` so the
fault harness covers the same pattern set the kernel differential suite
locks in.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines import reference
from repro.compiler.pipeline import compile_pattern
from repro.costmodel import profile_graph
from repro.graph.generators import erdos_renyi
from repro.runtime.context import ExecutionContext
from repro.runtime.engine import EngineOptions, execute_plan
from repro.runtime.faults import Fault, FaultPlan
from repro.runtime.supervisor import RunBudget, RunPolicy

from tests.test_differential_engines import PATTERNS

WORKERS = 2
CHUNKS_PER_WORKER = 4
OPTIONS = EngineOptions(workers=WORKERS, chunks_per_worker=CHUNKS_PER_WORKER)
NUM_CHUNKS = WORKERS * CHUNKS_PER_WORKER

#: One deterministic fault schedule per catalog pattern, keyed by its
#: position in the sorted catalog — every seed draws a different mix of
#: exceptions, worker deaths, and delays across the 8 chunks.
NAMES = sorted(PATTERNS)


def seeded_faults(seed: int) -> FaultPlan:
    return FaultPlan.seeded(
        seed,
        NUM_CHUNKS,
        exception_rate=0.4,
        death_rate=0.15,
        delay_rate=0.3,
        delay_s=0.01,
    )


@pytest.fixture(scope="module")
def env():
    graph = erdos_renyi(16, 0.35, seed=3)
    profile = profile_graph(graph, max_pattern_size=3, trials=60)
    return graph, profile


@pytest.mark.parametrize("name", NAMES)
def test_faulted_parallel_counts_are_exact(name, env):
    graph, profile = env
    pattern = PATTERNS[name]
    plan = compile_pattern(pattern, profile)
    expected = reference.count_embeddings(graph, pattern)
    faults = seeded_faults(NAMES.index(name))
    ctx = ExecutionContext(plan.root.num_tables, faults=faults)
    result = execute_plan(
        plan, graph, ctx=ctx,
        options=OPTIONS,
    )
    assert result.ok, [f.describe() for f in result.failures]
    assert result.embedding_count == expected
    # Every disruptive fault (raise or die) forces at least one retry
    # or pool restart; a delay-only schedule needs neither.
    disruptive = any(f.kind in ("raise", "die") for f in faults.faults)
    if disruptive:
        assert result.metrics.retries + result.metrics.pool_restarts >= 1


@pytest.mark.parametrize("name", NAMES)
def test_seeded_oom_faults_bisect_to_exact_counts(name, env):
    """Memory faults recover via chunk bisection, not whole-chunk retry:
    a governed run under a seeded oom schedule reproduces the fault-free
    count exactly with zero pool restarts."""
    from repro.runtime.resources import ResourceBudget
    from repro.runtime.supervisor import RunPolicy

    graph, profile = env
    pattern = PATTERNS[name]
    plan = compile_pattern(pattern, profile)
    expected = reference.count_embeddings(graph, pattern)
    faults = FaultPlan.seeded(
        NAMES.index(name), NUM_CHUNKS, oom_rate=0.35,
    )
    ctx = ExecutionContext(plan.root.num_tables, faults=faults)
    result = execute_plan(
        plan, graph, ctx=ctx,
        options=OPTIONS,
        policy=RunPolicy(budget=RunBudget(backoff_s=0.001),
                         supervised=True, resources=ResourceBudget()),
    )
    assert result.ok, [f.describe() for f in result.failures]
    assert result.embedding_count == expected
    assert result.metrics.pool_restarts == 0
    if faults.faults:
        assert result.metrics.bisections >= 1


def test_seeded_oom_schedule_is_deterministic_and_rate_guarded():
    """`oom_rate` draws are guarded so pre-oom schedules are unchanged:
    the same seed with oom_rate=0 reproduces the legacy schedule."""
    legacy = FaultPlan.seeded(7, 8, exception_rate=0.5, delay_rate=0.3)
    guarded = FaultPlan.seeded(7, 8, exception_rate=0.5, delay_rate=0.3,
                               oom_rate=0.0)
    assert legacy.faults == guarded.faults
    a = FaultPlan.seeded(7, 8, oom_rate=0.5)
    b = FaultPlan.seeded(7, 8, oom_rate=0.5)
    assert a.faults == b.faults
    assert any(f.kind == "oom" for f in a.faults)


def test_oom_fault_raises_memory_error():
    plan = FaultPlan((Fault("oom", 0),))
    with pytest.raises(MemoryError):
        plan.fire(0, 1)
    plan.fire(0, 2)  # attempt-1 default: later attempts are clean


def test_worker_death_restarts_the_pool(env):
    graph, profile = env
    pattern = PATTERNS["house"]
    plan = compile_pattern(pattern, profile)
    expected = reference.count_embeddings(graph, pattern)
    faults = FaultPlan((Fault("die", 1), Fault("die", 5)))
    ctx = ExecutionContext(plan.root.num_tables, faults=faults)
    result = execute_plan(
        plan, graph, ctx=ctx,
        options=OPTIONS,
    )
    assert result.ok
    assert result.embedding_count == expected
    assert result.metrics.pool_restarts >= 1


def test_chunk_timeout_recovers(env):
    graph, profile = env
    pattern = PATTERNS["cycle4"]
    plan = compile_pattern(pattern, profile)
    expected = reference.count_embeddings(graph, pattern)
    # A first-attempt stall far past the chunk timeout; the retry (no
    # delay on attempt 2) completes normally after the pool restart.
    faults = FaultPlan((Fault("delay", 0, delay_s=1.5),))
    budget = RunBudget(chunk_timeout_s=0.2, poll_interval_s=0.01)
    ctx = ExecutionContext(plan.root.num_tables, faults=faults)
    result = execute_plan(
        plan, graph, ctx=ctx, policy=budget,
        options=OPTIONS,
    )
    assert result.ok
    assert result.embedding_count == expected
    assert result.metrics.pool_restarts >= 1


def test_killed_then_resumed_checkpointed_run_is_exact(env, tmp_path):
    """A run that dies partway leaves a usable checkpoint behind."""
    graph, profile = env
    pattern = PATTERNS["house"]
    plan = compile_pattern(pattern, profile)
    expected = reference.count_embeddings(graph, pattern)
    path = tmp_path / "killed.jsonl"

    # Chunk 2 fails on *every* attempt — the run exhausts its retries
    # and reports an incomplete execution, exactly like a run killed by
    # an operator or the OS after most chunks finished.
    permanent = FaultPlan((Fault("raise", 2, attempts=None),))
    ctx = ExecutionContext(plan.root.num_tables, faults=permanent)
    budget = RunBudget(max_chunk_retries=1, backoff_s=0.001)
    first = execute_plan(
        plan, graph, ctx=ctx, options=OPTIONS,
        policy=RunPolicy(budget=budget, checkpoint=str(path)),
    )
    assert not first.ok
    assert any(f.index == 2 for f in first.failures)
    recorded = [
        json.loads(line)["chunk"]
        for line in path.read_text().splitlines() if line
    ]
    assert recorded, "completed chunks must be checkpointed"
    assert 2 not in recorded

    # The resumed run (faults gone — the poison cleared) replays the
    # checkpointed chunks and executes only the missing ones.
    second = execute_plan(
        plan, graph, options=OPTIONS,
        policy=RunPolicy(checkpoint=str(path)),
    )
    assert second.ok
    assert second.embedding_count == expected
    assert second.metrics.resumed_chunks == len(set(recorded))


def test_worker_death_leaves_no_dangling_spans(env):
    """Tracing a run whose worker dies mid-span stays well-formed.

    The dead worker's chunk never ships its spans back (its result
    channel dies with it), so the trace must contain only spans from
    the surviving attempts — every span closed (non-negative duration,
    inside the run window) and every parent resolvable — while the
    retried chunk keeps the count exact.
    """
    from repro import observe

    graph, profile = env
    pattern = PATTERNS["house"]
    plan = compile_pattern(pattern, profile)
    expected = reference.count_embeddings(graph, pattern)
    faults = FaultPlan((Fault("die", 1), Fault("die", 4)))
    ctx = ExecutionContext(plan.root.num_tables, faults=faults)
    observe.enable("faulted")
    try:
        result = execute_plan(
            plan, graph, ctx=ctx,
            options=OPTIONS,
        )
    finally:
        trace = observe.disable()
    assert result.ok
    assert result.embedding_count == expected
    assert result.metrics.pool_restarts >= 1

    sids = {span.sid for span in trace.spans}
    run_end = max(span.end for span in trace.spans)
    for span in trace.spans:
        assert span.end >= span.start, f"unclosed span {span!r}"
        assert span.end <= run_end + 1e-9
        if span.parent is not None:
            assert span.parent in sids, f"dangling parent on {span!r}"
    # Every chunk index appears via a *successful* attempt's span; the
    # died attempts contribute nothing (their spans were lost with the
    # worker, not left open).
    chunk_spans = [s for s in trace.spans if s.name == "chunk"]
    assert {s.attrs.get("index") for s in chunk_spans} == set(
        range(NUM_CHUNKS)
    )


def test_faulted_runs_match_fault_free_stats_free(env):
    """Fault-free and faulted runs agree accumulator-for-accumulator."""
    graph, profile = env
    pattern = PATTERNS["clique4"]
    plan = compile_pattern(pattern, profile)
    clean = execute_plan(plan, graph, options=OPTIONS)
    faults = seeded_faults(1234)
    ctx = ExecutionContext(plan.root.num_tables, faults=faults)
    faulted = execute_plan(
        plan, graph, ctx=ctx,
        options=OPTIONS,
    )
    assert faulted.ok
    assert faulted.accumulators == clean.accumulators
    assert faulted.embedding_count == clean.embedding_count
