"""Tests for profiling, the three cost models, and the algorithm search."""

from __future__ import annotations

import random

import pytest

from repro.baselines import reference
from repro.compiler.build import build_ast
from repro.compiler.passes import optimize
from repro.compiler.pipeline import compile_pattern, compile_spec
from repro.compiler.search import (
    SearchOptions,
    enumerate_candidates,
    random_spec,
    search,
)
from repro.compiler.specs import DecompSpec, DirectSpec
from repro.costmodel import (
    ApproxMiningCostModel,
    AutoMineCostModel,
    LocalityAwareCostModel,
    estimate_cost,
    get_model,
    profile_graph,
)
from repro.exceptions import CompilationError
from repro.graph.generators import erdos_renyi, small_world
from repro.patterns import catalog
from repro.patterns.generation import all_connected_patterns
from repro.patterns.isomorphism import automorphism_count, canonical_code
from repro.runtime.engine import execute_plan
from repro.sampling.edge_sampler import sample_edges, sample_vertices
from repro.sampling.neighbor_sampling import estimate_injective_homomorphisms


@pytest.fixture(scope="module")
def clustered_graph():
    return small_world(150, k=8, rewire=0.2, extra_triangles=150, seed=5)


@pytest.fixture(scope="module")
def profile(clustered_graph):
    return profile_graph(clustered_graph, max_pattern_size=4, trials=200)


class TestSampling:
    def test_edge_sampler_budget(self, clustered_graph):
        sample, ratio = sample_edges(clustered_graph, 200, seed=1)
        assert sample.num_edges == 200
        assert ratio == pytest.approx(200 / clustered_graph.num_edges)

    def test_edge_sampler_noop_when_small(self, k4_graph):
        sample, ratio = sample_edges(k4_graph, 100)
        assert sample is k4_graph
        assert ratio == 1.0

    def test_vertex_sampler(self, clustered_graph):
        sample, ratio = sample_vertices(clustered_graph, 50, seed=1)
        assert sample.num_vertices == 50
        assert ratio == pytest.approx(50 / clustered_graph.num_vertices)

    def test_edge_sampling_preserves_hubs_better(self):
        """The paper's section 6.2 claim, measured directly."""
        from repro.graph.generators import power_law

        graph = power_law(400, avg_degree=10.0, exponent=2.0, seed=9)
        budget_edges = graph.num_edges // 4
        edge_sample, _ = sample_edges(graph, budget_edges, seed=2)
        vertex_sample, _ = sample_vertices(graph, graph.num_vertices // 4,
                                           seed=2)
        assert edge_sample.max_degree > vertex_sample.max_degree

    def test_neighbor_sampling_unbiased_estimate(self, clustered_graph):
        exact = reference.count_injective_homomorphisms(
            clustered_graph, catalog.triangle()
        )
        estimate = estimate_injective_homomorphisms(
            clustered_graph, catalog.triangle(), trials=3000, seed=3
        )
        assert estimate == pytest.approx(exact, rel=0.35)

    def test_single_vertex_pattern(self, clustered_graph):
        assert estimate_injective_homomorphisms(
            clustered_graph, catalog.chain(2).induced_subpattern([0])
        ) == clustered_graph.num_vertices


class TestProfiler:
    def test_table_covers_all_small_patterns(self, profile):
        for size in (2, 3, 4):
            for pattern in all_connected_patterns(size):
                assert canonical_code(pattern) in profile.counts

    def test_lookup_is_reasonable(self, clustered_graph, profile):
        exact = reference.count_injective_homomorphisms(
            clustered_graph, catalog.chain(3)
        )
        assert profile.lookup(catalog.chain(3)) == pytest.approx(exact, rel=0.5)

    def test_on_demand_profiling_for_large_patterns(self, profile):
        value = profile.lookup(catalog.cycle(5))  # beyond the size-4 table
        assert value is not None and value > 0
        assert canonical_code(catalog.cycle(5)) in profile.counts  # cached

    def test_profiling_time_recorded(self, profile):
        assert profile.profiling_seconds > 0

    def test_label_fractions(self, labeled_graph):
        p = profile_graph(labeled_graph, max_pattern_size=3, trials=50)
        total = sum(p.label_fractions.values())
        assert total == pytest.approx(1.0)


class TestCostModels:
    def test_get_model(self):
        assert isinstance(get_model("automine"), AutoMineCostModel)
        assert isinstance(get_model("locality"), LocalityAwareCostModel)
        assert isinstance(get_model("approx_mining"), ApproxMiningCostModel)
        with pytest.raises(KeyError):
            get_model("oracle")

    def test_costs_positive_and_finite(self, profile):
        spec = DirectSpec(catalog.cycle(4), (0, 1, 2, 3))
        root, _ = build_ast(spec, "count")
        optimize(root)
        for name in ("automine", "locality", "approx_mining"):
            cost = estimate_cost(root, profile, get_model(name))
            assert cost > 0 and cost < float("inf")

    def test_automine_underestimates_clustered_graphs(self, clustered_graph,
                                                      profile):
        """The paper's core observation (section 6.1): on clustered real
        graphs the G(n,p) model underestimates dense-pattern loop trips by
        orders of magnitude relative to the approximate-mining model."""
        spec = DirectSpec(catalog.clique(4), (0, 1, 2, 3))
        root, _ = build_ast(spec, "count")
        am = estimate_cost(root, profile, get_model("automine"))
        ax = estimate_cost(root, profile, get_model("approx_mining"))
        assert ax > am

    def test_cost_model_ranking_accuracy(self, clustered_graph, profile):
        """The approx-mining model must rank plans at least as well as
        AutoMine's on a set of random implementations (Figure 11's
        methodology, reduced)."""
        import numpy as np

        pattern = catalog.house()
        rng = random.Random(5)
        specs = [random_spec(pattern, rng) for _ in range(12)]
        runtimes = []
        costs = {"automine": [], "approx_mining": []}
        for spec in specs:
            plan = compile_spec(spec)
            result = execute_plan(plan, clustered_graph)
            runtimes.append(result.seconds)
            for name in costs:
                costs[name].append(
                    estimate_cost(plan.root, profile, get_model(name))
                )

        def correlation(xs):
            return float(np.corrcoef(np.log(xs), np.log(runtimes))[0, 1])

        assert correlation(costs["approx_mining"]) > 0.0


class TestSearch:
    def test_clique_falls_back_to_direct(self, profile):
        best = search(catalog.clique(4), profile, get_model("approx_mining"))
        assert best.spec.kind == "direct"

    def test_search_returns_cheapest(self, profile):
        candidates = list(enumerate_candidates(
            catalog.chain(4), profile, get_model("approx_mining")
        ))
        best = search(catalog.chain(4), profile, get_model("approx_mining"))
        assert best.cost == min(c.cost for c in candidates)

    def test_search_without_any_space_raises(self, profile):
        with pytest.raises(CompilationError):
            search(
                catalog.chain(3), profile, get_model("approx_mining"),
                options=SearchOptions(enable_direct=False,
                                      enable_decomposition=False),
            )

    def test_random_spec_reproducible_and_valid(self, clustered_graph):
        pattern = catalog.house()
        rng = random.Random(3)
        spec = random_spec(pattern, rng)
        plan = compile_spec(spec)
        got = execute_plan(plan, clustered_graph).embedding_count
        assert got == reference.count_embeddings(clustered_graph, pattern)

    def test_random_spec_for_clique_is_direct(self):
        spec = random_spec(catalog.clique(4), random.Random(0))
        assert spec.kind == "direct"

    def test_compile_pattern_end_to_end(self, clustered_graph, profile):
        plan = compile_pattern(catalog.bowtie(), profile)
        result = execute_plan(plan, clustered_graph)
        assert result.embedding_count == reference.count_embeddings(
            clustered_graph, catalog.bowtie()
        )
        assert plan.compile_seconds < 5.0
        assert "plan for" in plan.describe()

    def test_selected_plans_correct_under_every_model(self, clustered_graph):
        graph = erdos_renyi(20, 0.3, seed=2)
        profile = profile_graph(graph, max_pattern_size=3, trials=100)
        for model_name in ("automine", "locality", "approx_mining"):
            plan = compile_pattern(catalog.cycle(5), profile, model_name)
            got = execute_plan(plan, graph).embedding_count
            assert got == reference.count_embeddings(graph, catalog.cycle(5))
