"""Command-line interface.

Examples::

    python -m repro count --dataset wikivote --pattern house
    python -m repro count --graph my.snap.txt --pattern 5-cycle --induced
    python -m repro census --dataset emaileucore --size 4
    python -m repro fsm --dataset mico --support 20
    python -m repro explain --dataset wikivote --pattern 4-chain
    python -m repro stats --dataset wikivote --pattern house --format json
    python -m repro count --dataset mico --pattern house --progress --ledger
    python -m repro history --last 10
    python -m repro perf run --suite smoke
    python -m repro perf check
    python -m repro datasets
    python -m repro serve --dataset wikivote --socket /tmp/repro.sock
    python -m repro submit --socket /tmp/repro.sock --pattern house
    python -m repro ping --socket /tmp/repro.sock
    python -m repro shutdown --socket /tmp/repro.sock

Pattern names: ``triangle``, ``diamond``, ``house``, ``gem``, ``bowtie``,
``net``, ``tailed-triangle``, ``k-chain``, ``k-cycle``, ``k-clique``,
``k-star`` (k a number).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time

from repro.api.session import DecoMine
from repro.exceptions import ExecutionError, PatternError, ReproError
from repro.runtime.engine import EngineOptions
from repro.patterns import catalog
from repro.patterns.pattern import Pattern

__all__ = ["main", "parse_pattern", "parse_size"]


def parse_pattern(text: str) -> Pattern:
    """Parse a pattern name like ``house`` or ``6-cycle``."""
    named = {
        "triangle": catalog.triangle,
        "diamond": catalog.diamond,
        "house": catalog.house,
        "gem": catalog.gem,
        "bowtie": catalog.bowtie,
        "net": catalog.net,
        "tailed-triangle": catalog.tailed_triangle,
    }
    key = text.strip().lower()
    if key in named:
        return named[key]()
    if "-" in key:
        head, _, kind = key.partition("-")
        if head.isdigit():
            k = int(head)
            builders = {
                "chain": catalog.chain,
                "path": catalog.chain,
                "cycle": catalog.cycle,
                "clique": catalog.clique,
                "star": catalog.star,
            }
            if kind in builders:
                return builders[kind](k)
    raise PatternError(
        f"unknown pattern {text!r}; use a catalog name or k-chain/k-cycle/"
        "k-clique/k-star"
    )


_SIZE_SUFFIXES = {
    "": 1, "b": 1,
    "k": 1024, "kb": 1024,
    "m": 1024 ** 2, "mb": 1024 ** 2,
    "g": 1024 ** 3, "gb": 1024 ** 3,
}


def parse_size(text: str) -> int:
    """Parse a byte size like ``512m``, ``2G``, ``64MB`` or ``1048576``."""
    body = text.strip().lower()
    digits = body.rstrip("kmgb")
    suffix = body[len(digits):]
    try:
        value = float(digits)
        scale = _SIZE_SUFFIXES[suffix]
    except (ValueError, KeyError):
        raise ValueError(
            f"invalid size {text!r}; use BYTES or a K/M/G suffix "
            "(e.g. 512m, 2G)"
        ) from None
    if value <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return int(value * scale)


def _load_graph(args):
    from repro.graph import datasets, io

    if args.graph:
        return io.load_edge_list(args.graph)
    if getattr(args, "labeled_graph", None):
        return io.load_labeled_graph(args.labeled_graph)
    if args.dataset:
        return datasets.load(args.dataset)
    raise SystemExit(
        "one of --graph FILE, --labeled-graph FILE or --dataset NAME is "
        "required"
    )


def _add_graph_args(parser):
    parser.add_argument("--graph", help="SNAP-style edge list file")
    parser.add_argument("--labeled-graph",
                        help="GraMi-style labeled graph file (v/e lines)")
    parser.add_argument("--dataset",
                        help="built-in dataset analogue (see `datasets`)")
    parser.add_argument("--cost-model", default="approx_mining",
                        choices=("approx_mining", "locality", "automine"))
    parser.add_argument("--plan-cache", metavar="DIR", nargs="?",
                        const="", default=None,
                        help="persistent compiled-plan cache directory "
                             "(default .repro/plancache or "
                             "$REPRO_PLAN_CACHE): warm patterns skip "
                             "profile+compile+search")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DecoMine-reproduction GPM system"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    count = sub.add_parser("count", help="count a pattern's embeddings")
    _add_graph_args(count)
    count.add_argument("--pattern", required=True)
    count.add_argument("--induced", action="store_true",
                       help="vertex-induced semantics")
    count.add_argument("--workers", type=int, default=1,
                       help="parallel fork-pool workers (default 1)")
    count.add_argument("--executor",
                       choices=("codegen", "interpreter", "vectorized"),
                       default="codegen",
                       help="plan backend: exec-compiled Python loops "
                            "(codegen, default), the IR interpreter, or "
                            "the array-at-a-time NumPy frontier executor "
                            "(vectorized; counting plans only)")
    count.add_argument("--orient", choices=("none", "degree", "degeneracy"),
                       default="none",
                       help="execute on an orientation-relabeled graph: "
                            "counting plans rewrite symmetry-trimmed "
                            "adjacency to bounded out-neighborhoods "
                            "(default none)")
    count.add_argument("--deadline", type=float, metavar="SECONDS",
                       help="whole-run deadline; unfinished chunks are "
                            "reported as failures instead of running over")
    count.add_argument("--resume", metavar="FILE",
                       help="JSON-lines checkpoint file: completed chunks "
                            "are recorded there and a rerun with the same "
                            "file (and same --workers) skips them")
    count.add_argument("--trace", metavar="FILE",
                       help="record a span trace of the run to FILE (JSON)")
    count.add_argument("--chrome-trace", metavar="FILE",
                       help="also write the trace as a Chrome trace_event "
                            "file (chrome://tracing / Perfetto)")
    count.add_argument("--max-rss", metavar="SIZE",
                       help="per-process memory budget (e.g. 512m, 2G): a "
                            "watchdog samples worker RSS and cancels + "
                            "bisects chunks that breach it; forces "
                            "supervised execution")
    count.add_argument("--max-frontier-mb", type=float, metavar="MB",
                       help="frontier byte budget for the vectorized "
                            "executor: soft breaches shrink the descend "
                            "slice, hard breaches bisect the chunk")
    count.add_argument("--progress", action="store_true",
                       help="render a live single-line progress bar "
                            "(chunks done, weighted %%, throughput, ETA); "
                            "forces supervised chunked execution")
    count.add_argument("--ledger", metavar="FILE", nargs="?",
                       const="", default=None,
                       help="record the run in the append-only run ledger "
                            "(default .repro/ledger.jsonl or $REPRO_LEDGER; "
                            "query with `repro history`)")

    batch = sub.add_parser(
        "batch",
        help="count a pattern workload as one shared-subpattern DAG run",
    )
    _add_graph_args(batch)
    batch.add_argument("--pattern", required=True,
                       help="comma-separated pattern list; duplicate and "
                            "isomorphic entries share one enumeration")
    batch.add_argument("--induced", action="store_true",
                       help="vertex-induced semantics for every pattern")
    batch.add_argument("--workers", type=int, default=1,
                       help="parallel fork-pool workers (default 1)")
    batch.add_argument("--executor",
                       choices=("codegen", "interpreter", "vectorized"),
                       default="codegen")
    batch.add_argument("--orient", choices=("none", "degree", "degeneracy"),
                       default="none")
    batch.add_argument("--deadline", type=float, metavar="SECONDS",
                       help="deadline for the whole batch run")
    batch.add_argument("--socket", metavar="PATH",
                       help="submit the workload to a running daemon "
                            "instead of executing locally (graph/engine "
                            "arguments are then ignored)")
    batch.add_argument("--client-id", default="cli")
    batch.add_argument("--format", choices=("text", "json"),
                       default="text",
                       help="json adds the per-request responses and the "
                            "sharing report")

    census = sub.add_parser("census", help="k-motif census")
    _add_graph_args(census)
    census.add_argument("--size", type=int, required=True)

    fsm = sub.add_parser("fsm", help="frequent subgraph mining")
    _add_graph_args(fsm)
    fsm.add_argument("--support", type=int, required=True)
    fsm.add_argument("--max-edges", type=int, default=3)

    explain = sub.add_parser("explain", help="show the selected plan")
    _add_graph_args(explain)
    explain.add_argument("--pattern", required=True)
    explain.add_argument("--source", action="store_true",
                         help="print the generated plan source")
    explain.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="json adds cost, orientation and the "
                              "plan-cache key + hit/miss")

    stats = sub.add_parser(
        "stats",
        help="run a counting workload with observability on and dump the "
             "metrics registry",
    )
    _add_graph_args(stats)
    stats.add_argument("--pattern", default="triangle",
                       help="pattern name, or a comma-separated list to "
                            "run several (gives the calibration report "
                            "plans to rank)")
    stats.add_argument("--workers", type=int, default=1)
    stats.add_argument("--format", choices=("json", "prometheus"),
                       default="json", help="metrics export format")
    stats.add_argument("--output", metavar="FILE",
                       help="write metrics to FILE instead of stdout")
    stats.add_argument("--trace", metavar="FILE",
                       help="record a span trace of the run to FILE (JSON)")
    stats.add_argument("--chrome-trace", metavar="FILE",
                       help="write the trace as a Chrome trace_event file")
    stats.add_argument("--calibration-out", metavar="FILE",
                       help="record cost-model calibration during the run "
                            "and write the prediction-vs-actual report "
                            "(JSON) to FILE")

    sub.add_parser("datasets", help="list built-in dataset analogues")

    history = sub.add_parser(
        "history",
        help="query the append-only run ledger (see `count --ledger`)",
    )
    history.add_argument("--ledger", metavar="FILE",
                         help="ledger file (default .repro/ledger.jsonl "
                              "or $REPRO_LEDGER)")
    history.add_argument("--format", choices=("table", "json"),
                         default="table")
    history.add_argument("--last", type=int, metavar="N",
                         help="only the N most recent matching runs")
    history.add_argument("--pattern", help="filter by pattern name")
    history.add_argument("--graph-fingerprint", metavar="PREFIX",
                         help="filter by graph-fingerprint prefix")
    history.add_argument("--since", metavar="WHEN",
                         help="UNIX timestamp or YYYY-MM-DD[THH:MM:SS]")
    history.add_argument("--no-aux", action="store_true",
                         help="hide aux (shrinkage-correction) runs")

    perf = sub.add_parser(
        "perf",
        help="perf trajectory: measure, regression-check, validate",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    perf_run = perf_sub.add_parser(
        "run", help="measure a suite and append a BENCH_<seq>.json point")
    perf_run.add_argument("--suite", default="smoke",
                          help="workload suite name (default smoke)")
    perf_run.add_argument("--repeats", type=int, default=3,
                          help="timed repeats per workload (default 3)")
    perf_run.add_argument("--root", default=".",
                          help="directory holding the BENCH_*.json series")
    perf_run.add_argument("--slowdown", type=float, default=1.0,
                          metavar="FACTOR",
                          help="artificially inflate measured times by "
                               "FACTOR (regression-detector self-test)")
    perf_check = perf_sub.add_parser(
        "check", help="compare the newest point against a baseline")
    perf_check.add_argument("--baseline", metavar="FILE",
                            help="baseline point (default: second-newest "
                                 "BENCH_*.json under --root)")
    perf_check.add_argument("--candidate", metavar="FILE",
                            help="candidate point (default: newest "
                                 "BENCH_*.json under --root)")
    perf_check.add_argument("--root", default=".")
    perf_check.add_argument("--threshold-pct", type=float, default=None,
                            help="relative regression bar (default 20)")
    perf_check.add_argument("--noise-mult", type=float, default=None,
                            help="dispersion multiple a slowdown must also "
                                 "clear (default 3)")
    perf_validate = perf_sub.add_parser(
        "validate", help="schema-check trajectory files")
    perf_validate.add_argument("files", nargs="+", metavar="FILE")

    serve = sub.add_parser(
        "serve",
        help="run the mining daemon: one shared-memory graph, concurrent "
             "admission-controlled requests over a Unix socket",
    )
    _add_graph_args(serve)
    serve.add_argument("--socket", required=True, metavar="PATH",
                       help="Unix socket path to listen on")
    serve.add_argument("--workers", type=int, default=1,
                       help="fork-pool workers per run (default 1)")
    serve.add_argument("--executor",
                       choices=("codegen", "interpreter", "vectorized"),
                       default="codegen")
    serve.add_argument("--max-inflight", type=int, default=2,
                       help="concurrent executions (default 2)")
    serve.add_argument("--max-pending", type=int, default=4,
                       help="requests allowed to queue for a slot before "
                            "admission control rejects (default 4)")
    serve.add_argument("--default-deadline", type=float, metavar="SECONDS",
                       help="deadline for requests that bring none")
    serve.add_argument("--ledger", metavar="FILE", nargs="?",
                       const="", default=None,
                       help="record every request in the run ledger, "
                            "tagged with the client id")
    serve.add_argument("--plan-cache-max-mb", type=float, metavar="MB",
                       help="size cap for the persistent plan cache: "
                            "stores past the cap evict least-recently-"
                            "used entries (requires --plan-cache)")

    submit = sub.add_parser(
        "submit", help="submit one counting request to a running daemon")
    submit.add_argument("--socket", required=True, metavar="PATH")
    submit.add_argument("--pattern", required=True)
    submit.add_argument("--induced", action="store_true")
    submit.add_argument("--deadline", type=float, metavar="SECONDS")
    submit.add_argument("--client-id", default="cli")
    submit.add_argument("--format", choices=("text", "json"),
                        default="text")

    ping = sub.add_parser("ping", help="daemon liveness + stats snapshot")
    ping.add_argument("--socket", required=True, metavar="PATH")
    ping.add_argument("--format", choices=("text", "json"), default="text")

    shutdown = sub.add_parser("shutdown", help="stop a running daemon")
    shutdown.add_argument("--socket", required=True, metavar="PATH")

    args = parser.parse_args(argv)

    if args.command == "datasets":
        from repro.graph.datasets import REGISTRY

        for abbr, spec in REGISTRY.items():
            print(f"{abbr:5} {spec.name:12} paper |V|={spec.paper_vertices:>6} "
                  f"|E|={spec.paper_edges:>6}  {spec.description}")
        return 0

    if args.command == "history":
        return _run_history(args)

    if args.command == "perf":
        return _run_perf(args)

    if args.command in ("submit", "ping", "shutdown"):
        return _run_serve_client(args)

    if args.command == "batch" and args.socket:
        return _run_batch_remote(args)

    try:
        graph = _load_graph(args)
    except (OSError, KeyError, ValueError, ReproError) as exc:
        detail = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: cannot load graph: {detail}", file=sys.stderr)
        return 2
    if args.command == "serve":
        return _run_serve(args, graph)
    try:
        if getattr(args, "pattern", None):
            for text in str(args.pattern).split(","):
                parse_pattern(text)
    except PatternError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    resources = None
    if (
        getattr(args, "max_rss", None)
        or getattr(args, "max_frontier_mb", None) is not None
    ):
        from repro.runtime.resources import ResourceBudget

        try:
            max_rss = parse_size(args.max_rss) if args.max_rss else None
            max_frontier = (
                int(args.max_frontier_mb * 1024 ** 2)
                if args.max_frontier_mb is not None else None
            )
            resources = ResourceBudget(
                max_rss_bytes=max_rss,
                max_frontier_bytes=max_frontier,
            )
        except (ValueError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    run_policy = None
    if (
        getattr(args, "deadline", None) is not None
        or getattr(args, "resume", None)
        or getattr(args, "progress", False)
        or resources is not None
    ):
        from repro.runtime.supervisor import RunBudget, RunPolicy

        run_policy = RunPolicy(
            budget=RunBudget(deadline_s=getattr(args, "deadline", None)),
            checkpoint=getattr(args, "resume", None),
            supervised=True,
            resources=resources,
        )
    progress = None
    if getattr(args, "progress", False):
        from repro.observe.progress import ConsoleProgress

        progress = ConsoleProgress()
    if getattr(args, "ledger", None) is not None:
        from repro.observe.ledger import enable_ledger

        enable_ledger(args.ledger or None)
    plan_cache = getattr(args, "plan_cache", None)
    if plan_cache == "":
        from repro.compiler.plancache import default_cache_path

        plan_cache = default_cache_path()
    session = DecoMine(
        graph,
        cost_model=args.cost_model,
        engine=EngineOptions(
            workers=getattr(args, "workers", 1),
            executor=getattr(args, "executor", "codegen"),
            orientation=getattr(args, "orient", "none"),
            progress=progress,
        ),
        run_policy=run_policy,
        plan_cache=plan_cache,
    )
    print(f"graph: {graph}", file=sys.stderr)

    if args.command == "count":
        pattern = parse_pattern(args.pattern)
        tracing = args.trace or args.chrome_trace
        if tracing:
            from repro import observe

            observe.enable("count")
        started = time.perf_counter()
        try:
            with _sigint_cancels(resources is not None):
                value = session.get_pattern_count(
                    pattern, induced=args.induced
                )
        except ExecutionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            result = session.last_result
            if result is not None:
                for failure in result.failures:
                    print(f"  {failure.describe()}", file=sys.stderr)
                cancelled = getattr(result, "cancelled", None)
                salvage = getattr(result, "salvage", None)
                if cancelled is not None:
                    fraction = (salvage or {}).get("fraction")
                    done = "" if fraction is None else (
                        f" after {fraction:.0%} of the work"
                    )
                    print(f"run cancelled ({cancelled}){done}",
                          file=sys.stderr)
                if args.resume:
                    print(f"completed chunks are checkpointed in "
                          f"{args.resume}; rerun the same command with "
                          f"--resume {args.resume} to continue",
                          file=sys.stderr)
            return 2
        finally:
            if tracing:
                _write_trace(args.trace, args.chrome_trace)
        elapsed = time.perf_counter() - started
        kind = "vertex-induced" if args.induced else "edge-induced"
        print(f"{pattern.name}: {value} {kind} embeddings "
              f"({elapsed:.2f}s)")
        result = session.last_result
        if run_policy is not None and result is not None:
            metrics = result.metrics
            line = (f"supervisor: {metrics.retries} retries, "
                    f"{metrics.resumed_chunks} chunks resumed from "
                    f"checkpoint, {metrics.pool_restarts} pool restarts")
            if resources is not None:
                line += (f", {metrics.bisections} bisections, "
                         f"{metrics.watchdog_kills} watchdog kills, "
                         f"{metrics.frontier_downshifts} frontier "
                         f"downshifts")
            print(line, file=sys.stderr)
        if args.ledger is not None:
            from repro.observe.ledger import disable_ledger

            ledger = disable_ledger()
            if ledger is not None:
                print(f"ledger: {ledger.path} (query with `repro history`)",
                      file=sys.stderr)
        return 0

    if args.command == "batch":
        return _run_batch(args, session)

    if args.command == "stats":
        return _run_stats(args, session)

    if args.command == "census":
        from repro.apps import DecoMineMiner, count_motifs

        started = time.perf_counter()
        result = count_motifs(DecoMineMiner(session), args.size)
        elapsed = time.perf_counter() - started
        for pattern, value in result.items():
            print(f"{pattern.name:12} {value}")
        print(f"total: {sum(result.values())} ({elapsed:.2f}s)",
              file=sys.stderr)
        return 0

    if args.command == "fsm":
        from repro.apps import DecoMineMiner, frequent_subgraph_mining

        result = frequent_subgraph_mining(
            DecoMineMiner(session), graph, args.support,
            max_edges=args.max_edges,
        )
        for item in sorted(result.frequent, key=lambda f: -f.support):
            p = item.pattern
            print(f"support={item.support:6} labels={list(p.labels)} "
                  f"edges={p.edges()}")
        print(f"{result.num_frequent} frequent patterns "
              f"({result.candidates_examined} candidates)", file=sys.stderr)
        return 0

    if args.command == "explain":
        pattern = parse_pattern(args.pattern)
        if args.format == "json":
            payload = session.explain_json(pattern)
            if args.source:
                payload["source"] = session.plan_for(pattern).source
            print(json.dumps(payload, indent=2))
            return 0
        plan = session.plan_for(pattern)
        print(plan.describe())
        if args.source:
            print(plan.source)
        return 0

    raise SystemExit(f"unknown command {args.command}")  # pragma: no cover


def _run_serve(args, graph) -> int:
    """``repro serve``: run the mining daemon until shutdown."""
    import os

    from repro.serve import MiningServer, ServerConfig

    if args.ledger is not None:
        from repro.observe.ledger import enable_ledger

        enable_ledger(args.ledger or None)
    plan_cache = args.plan_cache
    if plan_cache == "":
        from repro.compiler.plancache import default_cache_path

        plan_cache = default_cache_path()
    if plan_cache is not None and args.plan_cache_max_mb:
        from repro.compiler.plancache import PlanCache

        plan_cache = PlanCache(
            plan_cache,
            max_bytes=int(args.plan_cache_max_mb * 1024 ** 2),
        )
    config = ServerConfig(
        socket_path=args.socket,
        max_inflight=args.max_inflight,
        max_pending=args.max_pending,
        default_deadline_s=args.default_deadline,
    )
    server = MiningServer(
        graph,
        config,
        cost_model=args.cost_model,
        engine=EngineOptions(workers=args.workers, executor=args.executor),
        plan_cache=plan_cache,
    )
    print(f"serving {graph} on {args.socket} (pid {os.getpid()}, "
          f"max {config.max_inflight} in flight + {config.max_pending} "
          f"pending)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    print("daemon stopped", file=sys.stderr)
    return 0


def _run_batch(args, session: DecoMine) -> int:
    """``repro batch`` (local): one DAG run over the whole workload."""
    from repro.api.messages import MiningRequest

    patterns = [parse_pattern(text) for text in args.pattern.split(",")]
    requests = [
        MiningRequest(pattern=pattern, induced=args.induced,
                      deadline_s=args.deadline, client_id=args.client_id)
        for pattern in patterns
    ]
    started = time.perf_counter()
    try:
        responses = session.submit_batch(requests)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    result = session.last_batch_result
    sharing = result.sharing.as_dict() if result is not None else None
    return _print_batch(args, [p.name for p in patterns], responses,
                        sharing, elapsed)


def _run_batch_remote(args) -> int:
    """``repro batch --socket``: submit the workload to a daemon."""
    from repro.serve import Client

    try:
        patterns = [parse_pattern(text) for text in args.pattern.split(",")]
    except PatternError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        client = Client(args.socket, client_id=args.client_id)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with client:
        started = time.perf_counter()
        try:
            responses = client.submit_batch(
                patterns, induced=args.induced, deadline_s=args.deadline,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
    return _print_batch(args, [p.name for p in patterns], responses,
                        None, elapsed)


def _print_batch(args, names, responses, sharing, elapsed) -> int:
    ok = all(response.ok for response in responses)
    if args.format == "json":
        payload = {
            "ok": ok,
            "batch_id": responses[0].batch_id if responses else "",
            "seconds": elapsed,
            "responses": [response.to_wire() for response in responses],
        }
        if sharing is not None:
            payload["sharing"] = sharing
        print(json.dumps(payload, indent=2))
        return 0 if ok else 3
    width = max(len(name) for name in names) if names else 0
    for name, response in zip(names, responses):
        if response.ok:
            print(f"{name:<{width}}  {response.count}")
        else:
            print(f"{name:<{width}}  error: "
                  f"{response.error or response.cancelled}")
    if sharing is not None:
        print(f"sharing: {sharing['plans_batched']} plan runs answered "
              f"{sharing['workload']} queries "
              f"({sharing['plans_sequential']} runs sequentially; "
              f"{sharing['eliminated_fraction']:.0%} eliminated)",
              file=sys.stderr)
    kind = "vertex-induced" if args.induced else "edge-induced"
    print(f"batch {'ok' if ok else 'INCOMPLETE'} "
          f"({elapsed:.2f}s, {kind})", file=sys.stderr)
    return 0 if ok else 3


def _run_serve_client(args) -> int:
    """``repro submit`` / ``ping`` / ``shutdown``: talk to a daemon."""
    from repro.serve import Client

    try:
        client = Client(args.socket,
                        client_id=getattr(args, "client_id", "cli"))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with client:
        try:
            if args.command == "submit":
                response = client.submit(
                    parse_pattern(args.pattern),
                    induced=args.induced,
                    deadline_s=args.deadline,
                )
                if args.format == "json":
                    print(json.dumps(response.to_wire(), indent=2))
                    return 0 if response.ok else 3
                if not response.ok:
                    print(f"error: {response.error or response.cancelled}",
                          file=sys.stderr)
                    return 3
                source = "warm" if response.plan_cache_hit else "cold"
                print(f"{args.pattern}: {response.count} embeddings "
                      f"({response.seconds:.3f}s, {source} plan, "
                      f"run {response.run_id or 'unrecorded'})")
                return 0
            if args.command == "ping":
                stats = client.ping()
                if args.format == "json":
                    print(json.dumps(stats, indent=2))
                else:
                    print(f"ok: pid {stats['pid']}, up "
                          f"{stats['uptime_s']:.0f}s, "
                          f"{stats['requests']} requests "
                          f"({stats['rejections']} rejected), "
                          f"{stats['inflight']} in flight")
                return 0
            client.shutdown()
            print("daemon shutting down")
            return 0
        except (ReproError, PatternError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2


def _run_history(args) -> int:
    """``repro history``: render the run ledger as a table or JSON."""
    from repro.observe.ledger import Ledger, default_ledger_path

    path = args.ledger or default_ledger_path()
    try:
        records = Ledger(path).runs(
            pattern=args.pattern,
            graph=args.graph_fingerprint,
            since=args.since,
            last=args.last,
            include_aux=not args.no_aux,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in records], indent=2,
                         sort_keys=True))
        return 0
    if not records:
        print(f"no runs recorded in {path} (run with `repro count "
              f"--ledger` or observe.enable_ledger())", file=sys.stderr)
        return 0
    from repro.bench.reporting import Table

    table = Table(f"run ledger: {path}",
                  ["when", "run_id", "pattern", "graph", "count",
                   "seconds", "chunks", "retries", "ok"])
    for r in records:
        count = r.embedding_count
        verdict = "yes" if r.ok else "NO"
        if getattr(r, "cancelled", None):
            fraction = (r.salvage or {}).get("fraction")
            done = "" if fraction is None else f" {fraction:.0%}"
            verdict = f"NO ({r.cancelled}{done})"
        table.add_row(
            r.iso_time,
            r.run_id,
            r.pattern + (" (aux)" if r.aux else ""),
            f"{r.graph.get('name') or '?'}@{r.graph_fingerprint[:8]}",
            "-" if count is None else f"{count:,}",
            f"{r.seconds:.3f}",
            r.chunks,
            r.metrics.get("retries", 0),
            verdict,
        )
    print(table.render())
    return 0


def _run_perf(args) -> int:
    """``repro perf run|check|validate``: the perf trajectory."""
    from repro.bench import trajectory

    if args.perf_command == "run":
        suite_factory = trajectory.SUITES.get(args.suite)
        if suite_factory is None:
            print(f"error: unknown suite {args.suite!r}; available: "
                  f"{', '.join(sorted(trajectory.SUITES))}", file=sys.stderr)
            return 2
        point = trajectory.measure_suite(
            args.suite, suite_factory(), repeats=args.repeats,
            root=args.root,
        )
        if args.slowdown != 1.0:
            # Self-test hook: lets CI prove the detector actually fires.
            point.workloads = [
                trajectory.WorkloadPoint(
                    w.name, w.seconds * args.slowdown, w.dispersion,
                    w.repeats, w.value,
                )
                for w in point.workloads
            ]
        path = trajectory.write_point(point, args.root)
        for w in point.workloads:
            print(f"{w.name:24} {w.seconds:.4f}s "
                  f"(±{w.dispersion:.4f}s over {w.repeats} repeats)")
        print(f"trajectory point: {path} (commit {point.commit or '?'})",
              file=sys.stderr)
        return 0

    if args.perf_command == "check":
        try:
            if args.candidate:
                candidate = trajectory.load_point(args.candidate)
            else:
                points = trajectory.load_points(args.root)
                if not points:
                    print(f"error: no BENCH_*.json under {args.root}; "
                          f"run `repro perf run` first", file=sys.stderr)
                    return 2
                candidate = points[-1]
            if args.baseline:
                baseline = trajectory.load_point(args.baseline)
            else:
                points = trajectory.load_points(args.root)
                previous = [p for p in points if p.seq != candidate.seq]
                if not previous:
                    print("only one trajectory point exists; nothing to "
                          "compare against", file=sys.stderr)
                    return 0
                baseline = previous[-1]
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        kwargs = {}
        if args.threshold_pct is not None:
            kwargs["threshold_pct"] = args.threshold_pct
        if args.noise_mult is not None:
            kwargs["noise_mult"] = args.noise_mult
        report = trajectory.compare_points(baseline, candidate, **kwargs)
        print(report.render())
        if not report.ok:
            for regression in report.regressions:
                print(f"REGRESSION: {regression.describe()}",
                      file=sys.stderr)
            return 1
        return 0

    if args.perf_command == "validate":
        status = 0
        for path in args.files:
            try:
                trajectory.load_point(path)
            except ReproError as exc:
                print(f"{path}: INVALID — {exc}", file=sys.stderr)
                status = 1
            else:
                print(f"{path}: ok")
        return status

    raise SystemExit(f"unknown perf command {args.perf_command}")


@contextlib.contextmanager
def _sigint_cancels(governed: bool):
    """Route Ctrl-C through the cooperative cancel token.

    The first SIGINT flips the active run's token ("interrupt"): in-flight
    chunks stop at their next poll, completed chunks stay checkpointed, and
    the ExecutionError path above prints the salvage fraction plus the
    resume command.  A second SIGINT — or one arriving when no token is
    active — falls back to the ordinary KeyboardInterrupt.
    """
    if not governed:
        yield
        return
    import signal

    from repro.runtime.resources import request_cancel

    seen = {"count": 0}

    def _handler(signum, frame):
        seen["count"] += 1
        if seen["count"] > 1 or not request_cancel("interrupt"):
            raise KeyboardInterrupt
        print("\ninterrupt: cancelling run (Ctrl-C again to force quit)",
              file=sys.stderr)

    try:
        previous = signal.signal(signal.SIGINT, _handler)
    except ValueError:  # pragma: no cover - non-main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)


def _write_trace(json_path: str | None, chrome_path: str | None) -> None:
    from repro import observe

    trace = observe.disable()
    if trace is None:
        return
    if json_path:
        trace.write_json(json_path)
        print(f"trace: {json_path} ({len(trace.spans)} spans)",
              file=sys.stderr)
    if chrome_path:
        trace.write_chrome(chrome_path)
        print(f"chrome trace: {chrome_path}", file=sys.stderr)


def _run_stats(args, session: DecoMine) -> int:
    """``repro stats``: one observed counting run, then dump the registry."""
    from repro import observe

    tracing = args.trace or args.chrome_trace
    if tracing:
        observe.enable("stats")
    if args.calibration_out:
        observe.calibrate()
    patterns = [parse_pattern(text) for text in args.pattern.split(",")]
    try:
        for pattern in patterns:
            value = session.get_pattern_count(pattern)
            print(f"{pattern.name}: {value} embeddings", file=sys.stderr)
    finally:
        if tracing:
            _write_trace(args.trace, args.chrome_trace)
    if args.calibration_out:
        recorder = observe.calibrate(False)
        report = recorder.report()
        with open(args.calibration_out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(report.render(), file=sys.stderr)
        print(f"calibration report: {args.calibration_out}", file=sys.stderr)
    text = (observe.REGISTRY.to_json() if args.format == "json"
            else observe.REGISTRY.to_prometheus())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"metrics: {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
