"""k-cycle mining (the paper's Table 7 large-pattern workload).

Counts the size-``k`` cycles of the input graph (edge-induced subgraph
count — a cycle subgraph is a cycle regardless of chords).  Cycles are the
showcase for pattern decomposition on large patterns: a 2-vertex cutting
set splits a k-cycle into two paths, replacing O(n^k)-flavoured
enumeration with two path extensions joined at the cut.
"""

from __future__ import annotations

from repro.apps.interface import Miner
from repro.patterns.catalog import cycle

__all__ = ["count_cycles"]


def count_cycles(miner: Miner, k: int) -> int:
    """Number of k-cycle subgraphs."""
    return miner.count(cycle(k), induced=False)
