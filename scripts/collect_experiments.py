#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the saved benchmark reports.

Run the benchmarks first (``pytest benchmarks/ --benchmark-only``), then::

    python scripts/collect_experiments.py

The preamble (scope, substitutions, per-experiment verdicts) lives in
this script; the measured tables are pulled from ``benchmarks/reports/``.
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORTS = ROOT / "benchmarks" / "reports"

#: Experiment order and commentary: (report file stem, verdict paragraph).
EXPERIMENTS = [
    ("test_fig01_pattern_size",
     "**Reproduced (shape).** The DecoMine/Peregrine gap grows with "
     "pattern size for motifs, and Peregrine exceeds the budget first on "
     "cycles while DecoMine finishes — the paper's motivating figure."),
    ("test_tab02_automine_inhouse",
     "**Reproduced (gradient).** Each +1 in pattern size costs the "
     "AutoMine baseline orders of magnitude, as in the paper's Table 2; "
     "absolute values reflect the ~1000x smaller analogue graphs."),
    ("test_tab03_overall",
     "**Reproduced (shape).** DecoMine completes every cell and never "
     "loses; RStream/Arabesque produce the paper's T/C texture as soon "
     "as the pattern size grows; the AutoMine gap widens with size."),
    ("test_tab04_peregrine_pangolin_fractal",
     "**Reproduced (shape).** Pangolin's BFS frontier exhausts its "
     "budget on the larger cells (paper's C entries); Peregrine's "
     "whole-embedding FSM collapses at lower supports."),
    ("test_fig14_graphpi",
     "**Reproduced (shape).** DecoMine >= GraphPi everywhere; the "
     "counting optimization helps GraphPi but does not close the gap."),
    ("test_tab05_native_escape",
     "**Reproduced (shape).** ESCAPE's closed-form census beats "
     "single-thread DecoMine on 4-MC (paper: 4x); DecoMine beats "
     "GraphPi (paper: 17.3x average)."),
    ("test_fig15_plr",
     "**Reproduced (shape).** PLR improves a clear majority of size-5 "
     "patterns (paper: 'more than a half'), topping out around 2.4x "
     "(paper: 6.5x — the CSE-across-compensation-subtrees savings are "
     "numpy set-ops here, with different constant factors than the "
     "paper's C++)."),
    ("test_tab06_large_graphs",
     "**Reproduced (ordering).** Same system ordering on the two "
     "largest analogues."),
    ("test_tab07_large_patterns",
     "**Partially reproduced.** The growth shape holds: at k = 7 "
     "DecoMine finishes ~4x ahead of Peregrine (paper: 24x), and the "
     "baselines approach the budget first.  At k = 6 on the heavy-tailed "
     "analogues the per-level symmetry-trim heuristic misranks matching "
     "orders and DecoMine's direct plan runs ~2x behind Peregrine's — a "
     "cost-model accuracy limit consistent with the paper's own R < 1 "
     "correlations.  The paper-scale mechanism (decomposition dominating "
     "cycles) needs the uncapped hub degrees of the real graphs; see "
     "DESIGN.md section 6."),
    ("test_fig16_scalability",
     "**Reproduced (modeled).** Near-linear scaling from measured "
     "per-iteration work via an LPT schedule; the fork-pool runtime is "
     "exercised for correctness (single-core container — see "
     "DESIGN.md section 1)."),
    ("test_fig17_fsm_thresholds",
     "**Partially reproduced.** The sweep completes with DecoMine and "
     "AutoMine at parity (0.6-1.0x) rather than the paper's mid-range "
     "70x peak: at analogue scale labeled-pattern domains are small, so "
     "the whole-embedding materialization cost that decomposition avoids "
     "never dominates.  The extreme-threshold behaviour (both systems "
     "converge as patterns are filtered away) matches the paper."),
    ("test_sec86_label_constraints",
     "**Reproduced.** Identical match counts; DecoMine's partial "
     "resolution beats Peregrine's whole-embedding filtering."),
    ("test_fig18_compilation_cost",
     "**Reproduced (ratio).** Compilation is a minority cost wherever "
     "execution is non-trivial. The Python search is slower than the "
     "paper's C++ front-end, so trivial-execution cells (6-MC on the "
     "tiny cs analogue) show CT > ET; plans are cached per session."),
    ("test_fig11_cost_models",
     "**Reproduced (ranking).** The approximate-mining model correlates "
     "best with measured runtimes and its selected plans are at least "
     "as fast as the other models'."),
    ("test_fig19_cost_model_contribution",
     "**Reproduced.** DecoMine under the approximate-mining model "
     "matches or beats oracle-equipped AutoMine; an inaccurate model "
     "can select worse plans."),
    ("test_sec63_profiling_cost",
     "**Reproduced.** Profiling cost is flat in graph size (fixed edge "
     "budget), matching the paper's 1.96-7.10s narrow band."),
    ("test_bench_setops",
     "**Engineering (not a paper figure).** The adaptive set-operation "
     "kernels (galloping probe vs sort-merge, selected by operand size "
     "ratio) against the repository's original membership-mask "
     "implementation; the skewed rows are the neighbor-intersection "
     "regime that dominates enumeration."),
    ("test_bench_orientation",
     "**Engineering (not a paper figure).** Degeneracy-oriented "
     "execution against the unoriented engine on a skewed power-law "
     "graph: clique workloads compile to oriented-adjacency plans "
     "(every trim elided, intersections on degeneracy-bounded "
     "out-neighborhoods) and must beat the baseline by >= 1.5x "
     "geomean; plans the orient pass cannot rewrite fall back to the "
     "original graph and must stay within noise."),
    ("test_ablation_hashtable", None),
    ("test_ablation_elide_and_passes", None),
    ("test_ablation_executor", None),
    ("test_ablation_sampling", None),
    ("test_ablation_guard_probability", None),
]

PREAMBLE = """\
# EXPERIMENTS — paper vs reproduction

Generated by `scripts/collect_experiments.py` from the tables that
`pytest benchmarks/ --benchmark-only` saves under `benchmarks/reports/`.

**Ground rules** (see DESIGN.md for the full substitution table): the
substrate is a pure-Python engine running on fixed-seed synthetic
analogues of the paper's datasets, roughly 1000x smaller, with hub
degrees capped to keep star-shaped counts within single-core Python
budgets.  Absolute runtimes are therefore not comparable; every
experiment below states which *shape* of the paper's result is
reproduced and asserts it in its benchmark where statistically safe.
Timeout cells ("T") use scaled per-cell budgets in place of the paper's
12/24-hour limits; crash cells ("C") are stored-embedding budget
exhaustions standing in for the paper's out-of-memory failures.

**Headline reproduction results**

* The generalized pattern decomposition algorithm (Algorithm 1) is
  *exactly* correct: property tests validate counts and per-partial-
  embedding expansion counts against brute force over random graphs,
  patterns, cutting sets, matching orders, PLR and labeled variants.
* The motivating gap (Figure 1) reproduces: the enumeration system's
  runtime explodes with pattern size while DecoMine's grows far slower,
  with the baseline timing out first.
* The cost-model story reproduces end to end: approximate-mining >
  locality-aware > G(n,p) in ranking accuracy, and the model acts as the
  paper's "performance floor" — DecoMine never loses to the best
  baseline plan because its search space contains it.
* The partial-embedding API supports FSM (exact MNI domains), the
  star-center query and label-constrained counting without whole-pattern
  materialization, beating the whole-embedding baselines.

**Known deviations** (each discussed under its experiment): 6-cycle
matching orders are occasionally misranked on the heavy-tailed analogues
(Table 7), the FSM threshold sweep shows parity instead of the paper's
mid-range peak (Figure 17), and compile time is relatively heavier than
the paper's C++ front-end (Figure 18).

---
"""


def main() -> int:
    sections = [PREAMBLE]
    missing = []
    for stem, verdict in EXPERIMENTS:
        path = REPORTS / f"{stem}.txt"
        if not path.exists():
            missing.append(stem)
            continue
        body = path.read_text().rstrip()
        title = stem.replace("test_", "").replace("_", " ")
        sections.append(f"## {title}\n")
        if verdict:
            sections.append(verdict + "\n")
        sections.append("```text\n" + body + "\n```\n")
    if missing:
        sections.append(
            "## pending\n\nReports not yet generated: "
            + ", ".join(missing) + "\n"
        )
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(sections))
    print(f"wrote EXPERIMENTS.md ({len(EXPERIMENTS) - len(missing)} "
          f"experiments, {len(missing)} pending)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
