"""Batch-vs-sequential workload ablation: the multi-query batch
compiler against one-query-at-a-time execution.

Measures the quantity the batch compiler is built around: total time to
answer a whole pattern workload.  The sequential baseline runs the
18-pattern catalog one ``get_pattern_count`` at a time through a session
with a *warm* plan cache — planning is already amortized, so the
comparison isolates execution sharing, not compile latency.  The batched
run submits the same workload through ``submit_batch``: one DAG where
isomorphic queries dedup, decomposition quotients shared by several
parents are enumerated once, and dependency-free direct censuses fuse
through the prefix trie with matching orders re-chosen to deepen the
shared prefixes (the GEO-style rewrite).

Two gated metrics:

* **total-time ratio** (gated) — sequential wall time over batched wall
  time for the whole workload, same session options, warm plans on both
  sides.  Each side takes its best (minimum) over the measurement
  rounds — the least-noise estimator of true cost on a shared machine —
  and the acceptance gate requires **>= 1.5x** on the full power-law
  graph; per-round ratios and their geomean are reported alongside.
* **eliminated fraction** (gated) — the sharing report's fraction of
  distinct subpattern enumerations the DAG eliminated versus the
  sequential plan-execution count; the gate requires **>= 30%**.

Counts are asserted bit-identical batched vs sequential every round —
the benchmark is a correctness test as a side effect.

Runs standalone (CI smoke mode)::

    PYTHONPATH=src python benchmarks/bench_batch.py --smoke --json out.json
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.api.messages import MiningRequest
from repro.api.session import DecoMine
from repro.bench import Table
from repro.graph.generators import power_law
from repro.patterns import catalog

#: Every catalog pattern with at most five vertices — chains, cycles,
#: stars, cliques and the paper's running examples.  Deliberately the
#: same 18-pattern workload ``tests/test_batch.py`` locks bit-identity
#: on.
PATTERNS = {
    "chain3": catalog.chain(3),
    "chain4": catalog.chain(4),
    "chain5": catalog.chain(5),
    "cycle4": catalog.cycle(4),
    "cycle5": catalog.cycle(5),
    "clique4": catalog.clique(4),
    "clique5": catalog.clique(5),
    "star3": catalog.star(3),
    "star4": catalog.star(4),
    "triangle": catalog.triangle(),
    "tailed_triangle": catalog.tailed_triangle(),
    "diamond": catalog.diamond(),
    "house": catalog.house(),
    "gem": catalog.gem(),
    "bowtie": catalog.bowtie(),
    "clique4_minus_edge": catalog.clique_minus_edge(4),
    "clique5_minus_edge": catalog.clique_minus_edge(5),
    "figure6": catalog.figure6_pattern(),
}
WORKLOAD = [(name, PATTERNS[name]) for name in sorted(PATTERNS)]

#: Acceptance gates: geomean sequential/batched total-time ratio, and
#: the sharing report's eliminated fraction (both tiers).
FULL_GATE = 1.5
SMOKE_GATE = 1.2
SHARING_GATE = 0.30


def make_graph(smoke: bool):
    """Power-law graphs sized so the catalog stays direct-census bound.

    On these graphs the cost model keeps the heavy catalog members
    (5-cycle, house, figure6, bowtie) on *direct* plans — the regime
    trie fusion optimizes, and the one where a motif-counting workload
    actually spends its time.  On much larger/denser graphs the model
    flips those patterns to decomposition; fusion then cannot apply
    (decomposed specs are not direct censuses) and only the DAG's
    quotient sharing helps, which this benchmark reports but does not
    isolate.
    """
    if smoke:
        return power_law(300, avg_degree=10.0, exponent=1.8, seed=7)
    return power_law(500, avg_degree=12.0, exponent=1.8, seed=7)


def geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def run_experiment(smoke: bool = False):
    rounds = 1 if smoke else 5
    graph = make_graph(smoke)
    session = DecoMine(graph)
    requests = [
        MiningRequest(pattern=pattern, induced=False, request_id=name)
        for name, pattern in WORKLOAD
    ]

    # Warm every per-pattern plan once so neither side pays plan search
    # inside the timed region (the plan-cache ablation covers that).
    warmup = {name: session.get_pattern_count(pattern)
              for name, pattern in WORKLOAD}

    table = Table(
        "Batch compiler ablation: 18-pattern workload, total seconds "
        "(lower wins)",
        ["round", "sequential", "batched", "ratio"],
    )
    ratios: list[float] = []
    sequential_best = batched_best = float("inf")
    sharing = None
    for round_index in range(rounds):
        start = time.perf_counter()
        sequential = [session.get_pattern_count(pattern)
                      for name, pattern in WORKLOAD]
        sequential_s = time.perf_counter() - start

        start = time.perf_counter()
        responses = session.submit_batch(requests)
        batched_s = time.perf_counter() - start

        assert all(response.ok for response in responses)
        batched = [response.count for response in responses]
        expected = [warmup[name] for name, _ in WORKLOAD]
        assert sequential == expected, "sequential counts drifted"
        assert batched == expected, (
            f"batched counts diverged: {batched} != {expected}"
        )
        sharing = session.last_batch_result.sharing
        ratio = sequential_s / batched_s
        ratios.append(ratio)
        sequential_best = min(sequential_best, sequential_s)
        batched_best = min(batched_best, batched_s)
        table.add_row(str(round_index + 1), f"{sequential_s:.3f}",
                      f"{batched_s:.3f}", f"{ratio:.2f}x")

    gate = SMOKE_GATE if smoke else FULL_GATE
    gain = sequential_best / batched_best
    table.add_note(
        f"total-time ratio (best-of-{rounds} each side): {gain:.2f}x "
        f"(acceptance gate: >= {gate:.1f}x); per-round geomean "
        f"{geomean(ratios):.2f}x"
    )
    table.add_note(
        f"sharing: {sharing.plans_batched} plan executions answered "
        f"{sharing.workload} queries ({sharing.plans_sequential} "
        f"sequentially; {sharing.eliminated_fraction:.0%} eliminated, "
        f"gate >= {SHARING_GATE:.0%})"
    )
    table.add_note(
        "both sides share one session with warm plans and identical "
        "EngineOptions; counts asserted bit-identical every round"
    )
    table.add_note(
        f"graph: |V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"max degree {int(graph.degrees.max())}"
    )
    summary = {
        "total_time_ratio": gain,
        "geomean_round_ratio": geomean(ratios),
        "gate": gate,
        "sharing_gate": SHARING_GATE,
        "sequential_seconds": sequential_best,
        "batched_seconds": batched_best,
        "sharing": sharing.as_dict(),
        "counts": warmup,
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "smoke": smoke,
    }
    return table, summary


def check_gates(summary) -> list[str]:
    failures = []
    if summary["total_time_ratio"] < summary["gate"]:
        failures.append(
            f"total-time ratio {summary['total_time_ratio']:.2f}x "
            f"below the {summary['gate']:.1f}x gate"
        )
    eliminated = summary["sharing"]["eliminated_fraction"]
    if eliminated < summary["sharing_gate"]:
        failures.append(
            f"sharing report eliminated {eliminated:.0%} of subpattern "
            f"enumerations, below the {summary['sharing_gate']:.0%} gate"
        )
    return failures


def test_bench_batch(report, run_once):
    table, summary = run_once(lambda: run_experiment(smoke=False))
    report(table)
    # The tentpole acceptance criterion: the batched workload must beat
    # sequential by >= 1.5x geomean with >= 30% of enumerations shared.
    assert not check_gates(summary), check_gates(summary)


def main(argv=None):
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small graph, one round, low gate (CI)")
    parser.add_argument("--json", metavar="FILE",
                        help="write the summary as JSON")
    args = parser.parse_args(argv)

    table, summary = run_experiment(smoke=args.smoke)
    print(table.render())
    if args.json:
        Path(args.json).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    failures = check_gates(summary)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
