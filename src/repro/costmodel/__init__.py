"""Cost models: AutoMine G(n,p), locality-aware, approximate-mining."""

from repro.costmodel.approx_mining import ApproxMiningCostModel
from repro.costmodel.automine import AutoMineCostModel
from repro.costmodel.base import CostModel, estimate_cost
from repro.costmodel.locality import LocalityAwareCostModel
from repro.costmodel.profiler import CostProfile, profile_graph

MODELS = {
    "automine": AutoMineCostModel,
    "locality": LocalityAwareCostModel,
    "approx_mining": ApproxMiningCostModel,
}


def get_model(name: str) -> CostModel:
    """Instantiate a cost model by name ('automine'|'locality'|'approx_mining')."""
    try:
        return MODELS[name]()
    except KeyError:
        raise KeyError(f"unknown cost model {name!r}; choose from {sorted(MODELS)}")


__all__ = [
    "ApproxMiningCostModel",
    "AutoMineCostModel",
    "CostModel",
    "CostProfile",
    "LocalityAwareCostModel",
    "MODELS",
    "estimate_cost",
    "get_model",
    "profile_graph",
]
