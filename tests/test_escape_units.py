"""Unit tests for ESCAPE's closed-form counts on hand-checkable graphs."""

from __future__ import annotations

import pytest

from repro.baselines.escape import Escape
from repro.graph.csr import CSRGraph
from repro.patterns import catalog


@pytest.fixture()
def paw_graph():
    """Triangle 0-1-2 with a pendant 3 attached at 2 and a distant edge."""
    return CSRGraph.from_edges(
        6, [(0, 1), (0, 2), (1, 2), (2, 3), (4, 5)]
    )


@pytest.fixture()
def k4_plus_tail():
    """K4 on {0..3} plus a tail 3-4."""
    return CSRGraph.from_edges(
        5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]
    )


class TestSize3Formulas:
    def test_wedges_and_triangles(self, paw_graph):
        counts = Escape(paw_graph)._edge_induced_size3()
        by_name = {p.name: c for p, c in counts.items()}
        # Wedges: deg (2,2,3,1,1,1) -> C(2,2)*... = 1+1+3 = 5.
        assert by_name["3-chain"] == 5
        assert by_name["3-clique"] == 1

    def test_k4(self, k4_graph):
        counts = Escape(k4_graph)._edge_induced_size3()
        by_name = {p.name: c for p, c in counts.items()}
        assert by_name["3-chain"] == 12
        assert by_name["3-clique"] == 4


class TestSize4Formulas:
    def test_k4_closed_forms(self, k4_graph):
        counts = Escape(k4_graph)._edge_induced_size4()
        by_name = {p.name: c for p, c in counts.items()}
        assert by_name["4-clique"] == 1
        assert by_name["diamond"] == 6      # choose the missing edge
        assert by_name["4-cycle"] == 3
        assert by_name["tailed-triangle"] == 12
        assert by_name["4-chain"] == 12
        assert by_name["3-star"] == 4

    def test_k4_plus_tail_spot_checks(self, k4_plus_tail):
        from repro.baselines import reference

        counts = Escape(k4_plus_tail)._edge_induced_size4()
        for pattern, value in counts.items():
            assert value == reference.count_embeddings(
                k4_plus_tail, pattern
            ), pattern.name

    def test_four_cycles_on_cycle_graph(self):
        c6 = CSRGraph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        counts = Escape(c6)._edge_induced_size4()
        by_name = {p.name: c for p, c in counts.items()}
        assert by_name["4-cycle"] == 0
        assert by_name["4-chain"] == 6

    def test_statistics_cached(self, k4_graph):
        escape = Escape(k4_graph)
        first = escape._statistics()
        assert escape._statistics() is first


class TestVertexInducedCensus:
    def test_paw_vertex_induced(self, paw_graph):
        census = {
            p.name: c for p, c in Escape(paw_graph).motif_census(3).items()
        }
        # Vertex-induced: wedges exclude the closed triangle's three.
        assert census["motif3_1"] == 1  # the triangle
        assert census["motif3_0"] == 2  # open wedges: (0,2,3), (1,2,3)
