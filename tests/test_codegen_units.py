"""Snippet-level tests of the Python back-end's emitted source."""

from __future__ import annotations

import pytest

from repro.compiler.ast_nodes import (
    Accumulate,
    EmitPartial,
    HashAdd,
    HashClear,
    HashGet,
    IfPositive,
    IfPred,
    Loop,
    Root,
    ScalarOp,
    SetOp,
)
from repro.compiler.codegen import compile_root, generate_source


def source_of(*body, accumulators=("acc",)):
    return generate_source(Root(list(body), accumulators=accumulators))


class TestSetExpressions:
    def test_each_op_renders(self):
        cases = {
            ("universe", ()): "graph.vertices()",
            ("neighbors", ("v1",)): "_neighbors(v1)",
            ("intersect", ("s1", "s2")): "_intersect(s1, s2)",
            ("subtract", ("s1", "s2")): "_subtract(s1, s2)",
            ("copy", ("s1",)): "= s1",
            ("trim_below", ("s1", "v1")): "_trim_below(s1, v1)",
            ("trim_above", ("s1", "v1")): "_trim_above(s1, v1)",
            ("exclude", ("s1", "v1", "v2")): "_exclude(s1, v1, v2)",
            ("filter_label", ("s1", 3)): "_filter_label(s1, 3)",
            ("label_universe", (7,)): "_label_universe(7)",
        }
        for (op, args), expected in cases.items():
            assert expected in source_of(SetOp("sX", op, args)), op

    def test_scalar_ops_render(self):
        src = source_of(
            ScalarOp("c1", "const", (5,)),
            ScalarOp("c2", "size", ("s1",)),
            ScalarOp("c3", "mul", ("c1", "c2")),
            ScalarOp("c4", "sub", ("c3", 1)),
            ScalarOp("c5", "floordiv", ("c4", "c1")),
            ScalarOp("c6", "add", ("c5", 2)),
        )
        assert "c1 = 5" in src
        assert "c2 = len(s1)" in src
        assert "c3 = c1 * c2" in src
        assert "c4 = c3 - 1" in src
        assert "c5 = c4 // c1" in src
        assert "c6 = c5 + 2" in src


class TestStatements:
    def test_loop_uses_tolist(self):
        src = source_of(Loop("v1", "s1", [Accumulate("acc", 1)]))
        assert "for v1 in s1[start:stop].tolist():" in src

    def test_only_outermost_loop_sliced(self):
        src = source_of(
            Loop("v1", "s1", [Loop("v2", "s2", [Accumulate("acc", 1)])])
        )
        assert src.count("[start:stop]") == 1
        assert "for v2 in s2.tolist():" in src

    def test_single_key_tuples_get_commas(self):
        src = source_of(
            HashAdd(0, ("v1",)),
            HashGet("c1", 0, ("v1",)),
            EmitPartial(0, ("v1",), "c1"),
        )
        assert "_tables[0].add((v1,))" in src
        assert "c1 = _tables[0].get((v1,))" in src
        assert "_emit(0, (v1,), c1)" in src

    def test_multi_key_tuples(self):
        src = source_of(HashAdd(2, ("v1", "v2")), HashClear(2))
        assert "_tables[2].add((v1, v2))" in src
        assert "_tables[2].clear()" in src

    def test_guards_render(self):
        src = source_of(
            IfPositive("c1", [Accumulate("acc", 1)]),
            IfPred(1, ("v1", "v2"), [Accumulate("acc", 1)]),
        )
        assert "if c1 > 0:" in src
        assert "if _preds[1](v1, v2):" in src

    def test_accumulators_initialized_and_returned(self):
        src = source_of(Accumulate("acc_a", 1),
                        accumulators=("acc_a", "acc_b"))
        assert "acc_a = 0" in src and "acc_b = 0" in src
        assert "'acc_a': acc_a" in src and "'acc_b': acc_b" in src

    def test_unknown_node_rejected(self):
        class Mystery:
            pass

        with pytest.raises(TypeError):
            generate_source(Root([Mystery()], accumulators=()))


class TestCompileRoot:
    def test_compiled_function_runs(self, k4_graph):
        from repro.runtime.context import ExecutionContext

        root = Root(
            [
                SetOp("s1", "universe", ()),
                Loop("v1", "s1", [
                    SetOp("s2", "neighbors", ("v1",)),
                    ScalarOp("c1", "size", ("s2",)),
                    Accumulate("acc", "c1"),
                ]),
            ],
            accumulators=("acc",),
        )
        fn, src = compile_root(root)
        result = fn(k4_graph, ExecutionContext())
        assert result["acc"] == 12  # sum of degrees of K4
        assert "def _plan(" in src
