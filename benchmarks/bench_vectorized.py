"""Vectorized-executor ablation: batched NumPy kernels vs codegen.

Runs the catalog patterns through the full session path — profile,
cost-model search, decomposition, optimization passes — twice per
workload: once on the scalar codegen executor, once on the vectorized
executor (``EngineOptions(executor="vectorized")``), on the same skewed
power-law graph the orientation ablation uses.  Counts are asserted
bit-identical per workload, making the benchmark a differential test as
a side effect.

Two regimes surface:

* **Batched** (gated) — plans that spend their time inside per-row set
  kernels.  The frontier execution model turns every level of the loop
  nest into a handful of array-at-a-time ``searchsorted`` kernels, so
  the Python interpreter overhead (the per-embedding dispatch the
  scalar executors pay) amortizes away.  The acceptance gate requires a
  >= 2x geomean speedup here; measured headroom is well above it.
* **Memo-bound** (informational, ungated) — plans whose scalar
  execution is dominated by SetOpCache hits (cycle5: the same hub
  intersections recur across the outer loop, and the scalar executors
  reuse them by operand identity).  The batched kernels recompute what
  the cache would have reused, so vectorized execution lands near — or
  below — parity.  Recorded and reported, not gated: the fix is a
  batched memo keyed on vertex ids, which is future work.

Runs standalone too (CI smoke mode)::

    PYTHONPATH=src python benchmarks/bench_vectorized.py --smoke --json out.json
"""

from __future__ import annotations

import numpy as np

from repro.api.session import DecoMine
from repro.bench import Table
from repro.graph.generators import power_law
from repro.patterns import catalog
from repro.runtime.engine import EngineOptions

#: The gated tier: every catalog workload whose winning plan is
#: kernel-bound.  Spans cliques (intersection-heavy), near-cliques
#: (bounded kernels), sparse tails (subtract/exclude), and the paper's
#: running example.
BATCHED = [
    ("triangle", catalog.triangle),
    ("clique4", lambda: catalog.clique(4)),
    ("clique5", lambda: catalog.clique(5)),
    ("clique4_minus_edge", lambda: catalog.clique_minus_edge(4)),
    ("clique5_minus_edge", lambda: catalog.clique_minus_edge(5)),
    ("diamond", catalog.diamond),
    ("tailed_triangle", catalog.tailed_triangle),
    ("house", catalog.house),
    ("gem", catalog.gem),
    ("bowtie", catalog.bowtie),
    ("cycle4", lambda: catalog.cycle(4)),
    ("figure6", catalog.figure6_pattern),
]

#: The informational tier: SetOpCache-dominated plans where batching
#: forfeits cross-iteration reuse.  Measured with one round (cycle5 is
#: the most expensive workload in the file) and never gated.
MEMO_BOUND = [
    ("cycle5", lambda: catalog.cycle(5)),
]

#: Acceptance gate on the batched tier's geomean speedup.  The full
#: graph has real headroom above 2x; the smoke graph is small enough
#: that per-call kernel overhead eats into the win, so its bar is lower
#: — it exists to catch wholesale regressions in CI, not to certify the
#: speedup claim.
FULL_GATE = 2.0
SMOKE_GATE = 1.2

#: No batched workload may regress past this floor even individually —
#: a tripwire for a pattern silently falling off the fast path.
CASE_FLOOR = 0.8


def make_graph(smoke: bool):
    """The orientation ablation's skewed power-law graph: hubs give the
    batched kernels long rows to amortize over, and give codegen the
    per-embedding dispatch bill the vectorized executor is built to
    avoid."""
    if smoke:
        return power_law(300, avg_degree=10.0, exponent=1.8, seed=7)
    return power_law(1000, avg_degree=14.0, exponent=1.8, seed=7)


def best_seconds(session, pattern, rounds):
    """Best-of-rounds wall time and the (verified stable) count."""
    best = float("inf")
    count = None
    for _ in range(rounds):
        value = session.get_pattern_count(pattern)
        assert count is None or count == value
        count = value
        best = min(best, session.last_result.seconds)
    return best, count


def geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def run_experiment(smoke: bool = False):
    rounds = 1 if smoke else 3
    graph = make_graph(smoke)
    codegen = DecoMine(graph, engine=EngineOptions(executor="codegen"))
    vectorized = DecoMine(graph, engine=EngineOptions(executor="vectorized"))

    table = Table(
        "Vectorized executor ablation: batched kernels vs codegen "
        "(seconds, lower wins)",
        ["pattern", "tier", "codegen", "vectorized", "speedup"],
    )
    results: dict[str, dict] = {}
    speedups: dict[str, list[float]] = {"batched": [], "memo-bound": []}
    tiers = [("batched", BATCHED, rounds), ("memo-bound", MEMO_BOUND, 1)]
    for tier, workloads, tier_rounds in tiers:
        for name, factory in workloads:
            pattern = factory()
            base_s, base_count = best_seconds(codegen, pattern, tier_rounds)
            vec_s, vec_count = best_seconds(vectorized, pattern, tier_rounds)
            assert base_count == vec_count, (
                f"{name}: vectorized count {vec_count} != {base_count}"
            )
            speedup = base_s / vec_s
            speedups[tier].append(speedup)
            results[name] = {
                "tier": tier,
                "count": base_count,
                "seconds_codegen": base_s,
                "seconds_vectorized": vec_s,
                "speedup": speedup,
            }
            table.add_row(name, tier, f"{base_s:.3f}", f"{vec_s:.3f}",
                          f"{speedup:.2f}x")

    gate = SMOKE_GATE if smoke else FULL_GATE
    batched_gain = geomean(speedups["batched"])
    memo_gain = geomean(speedups["memo-bound"])
    table.add_note(
        f"batched geomean speedup: {batched_gain:.2f}x "
        f"(acceptance gate: >= {gate:.1f}x)"
    )
    table.add_note(
        f"memo-bound geomean: {memo_gain:.2f}x (informational — scalar "
        "executors win these through SetOpCache reuse batching forfeits)"
    )
    table.add_note(
        f"graph: |V|={graph.num_vertices}, |E|={graph.num_edges}, "
        f"max degree {int(graph.degrees.max())}"
    )
    summary = {
        "batched_geomean_speedup": batched_gain,
        "memo_bound_geomean_speedup": memo_gain,
        "gate": gate,
        "case_floor": CASE_FLOOR,
        "cases": results,
        "graph": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "max_degree": int(graph.degrees.max()),
        },
        "smoke": smoke,
    }
    return table, summary


def check_gates(summary) -> list[str]:
    """Every gate violation in ``summary``, as printable messages."""
    failures = []
    if summary["batched_geomean_speedup"] < summary["gate"]:
        failures.append(
            f"batched geomean {summary['batched_geomean_speedup']:.2f}x "
            f"below the {summary['gate']:.1f}x gate"
        )
    for name, case in summary["cases"].items():
        if case["tier"] == "batched" and case["speedup"] < CASE_FLOOR:
            failures.append(
                f"{name}: speedup {case['speedup']:.2f}x below the "
                f"{CASE_FLOOR:.1f}x per-case floor"
            )
    return failures


def test_bench_vectorized(report, run_once):
    table, summary = run_once(lambda: run_experiment(smoke=False))
    report(table)
    # The acceptance criterion for the vectorized executor: kernel-bound
    # workloads must beat codegen by >= 2x geomean on the skewed graph,
    # and no single workload may silently fall off the fast path.
    assert not check_gates(summary), check_gates(summary)


def main(argv=None):
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced graph and repetitions (CI)")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args(argv)
    table, summary = run_experiment(smoke=args.smoke)
    print(table.render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2)
        print(f"wrote {args.json}")
    failures = check_gates(summary)
    for failure in failures:
        print(f"GATE FAILURE: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
