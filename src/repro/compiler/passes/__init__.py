"""Middle-end optimization passes over the DecoMine AST.

The paper's middle end applies Loop Invariant Code Motion and Common
Subexpression Elimination (section 7.1) plus pattern-aware loop rewriting
(section 7.2, applied at build time -- see :mod:`repro.compiler.build`).
This package adds the two standard clean-up passes that make those
effective: dead code elimination and innermost-loop elision (counting a
candidate set by its size instead of iterating it -- the optimization every
vertex-set-based GPM system relies on).
"""

from repro.compiler.passes.cse import common_subexpression_elimination
from repro.compiler.passes.dce import dead_code_elimination
from repro.compiler.passes.elide import elide_counting_loops
from repro.compiler.passes.fuse import fuse_bounded_ops
from repro.compiler.passes.licm import loop_invariant_code_motion
from repro.compiler.passes.orient import orient_adjacency
from repro.compiler.passes.pipeline import PassOptions, optimize

__all__ = [
    "common_subexpression_elimination",
    "dead_code_elimination",
    "elide_counting_loops",
    "fuse_bounded_ops",
    "loop_invariant_code_motion",
    "orient_adjacency",
    "optimize",
    "PassOptions",
]
