"""Tests for the perf trajectory (``repro.bench.trajectory``).

Covers the robust summary statistics, the BENCH_<seq>.json series
(sequencing, round-trips, schema validation), and the noise-aware
regression rule: an injected >=20% slowdown is flagged, an identical
back-to-back re-run is not, and a slowdown inside the measured noise
band is forgiven.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import median, repeat_call, spread
from repro.bench.trajectory import (
    TRAJECTORY_VERSION,
    TrajectoryPoint,
    WorkloadPoint,
    compare_points,
    load_point,
    load_points,
    measure_suite,
    next_bench_path,
    validate_point,
    write_point,
)
from repro.exceptions import ReproError


class TestStatistics:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_spread_is_robust_to_one_outlier(self):
        tight = [1.0, 1.01, 0.99, 1.0, 1.02]
        with_outlier = tight + [50.0]
        assert spread(with_outlier) < 0.1  # stdev would be ~18

    def test_repeat_call_returns_one_time_per_repeat(self):
        calls = []
        seconds = repeat_call(lambda: calls.append(1), repeats=4)
        assert len(seconds) == 4
        assert len(calls) == 4
        assert all(s >= 0 for s in seconds)
        with pytest.raises(ValueError):
            repeat_call(lambda: None, repeats=0)


def point(suite="smoke", seq=None, **workloads) -> TrajectoryPoint:
    """Build a point from ``name=(seconds, dispersion)`` kwargs."""
    return TrajectoryPoint(
        suite=suite,
        seq=seq,
        workloads=[
            WorkloadPoint(name.replace("_", "-"), seconds, dispersion, 3)
            for name, (seconds, dispersion) in workloads.items()
        ],
    )


class TestSeries:
    def test_measure_suite_records_all_workloads(self, tmp_path):
        result = measure_suite(
            "unit", {"a": lambda: 1, "b": lambda: 2}, repeats=2,
            root=tmp_path,  # not a git checkout -> commit is None
        )
        assert result.suite == "unit"
        assert [w.name for w in result.workloads] == ["a", "b"]
        assert all(w.repeats == 2 for w in result.workloads)
        assert result.workload("a").value == 1
        assert result.commit is None
        assert result.host["cpus"] >= 1

    def test_write_assigns_sequence_numbers(self, tmp_path):
        first = write_point(point(w=(1.0, 0.0)), tmp_path)
        second = write_point(point(w=(1.0, 0.0)), tmp_path)
        assert first.name == "BENCH_0001.json"
        assert second.name == "BENCH_0002.json"
        assert next_bench_path(tmp_path).name == "BENCH_0003.json"
        points = load_points(tmp_path)
        assert [p.seq for p in points] == [1, 2]

    def test_round_trip_preserves_content(self, tmp_path):
        original = point(w=(1.25, 0.05), x=(0.5, 0.01))
        original.commit = "abc1234"
        path = write_point(original, tmp_path)
        loaded = load_point(path)
        assert loaded.suite == original.suite
        assert loaded.commit == "abc1234"
        assert loaded.workload("w").seconds == 1.25
        assert loaded.workload("x").dispersion == 0.01

    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(ReproError, match="no trajectory file"):
            load_point(tmp_path / "BENCH_0001.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_point(bad)
        bad.write_text(json.dumps({"version": TRAJECTORY_VERSION}))
        with pytest.raises(ReproError, match="invalid trajectory point"):
            load_point(bad)

    def test_validate_point_enumerates_errors(self):
        errors = validate_point({
            "version": 99,
            "suite": "",
            "workloads": [{"name": 5, "seconds": -1, "repeats": 0}],
            "host": [],
            "commit": 7,
        })
        joined = "\n".join(errors)
        assert "version" in joined
        assert "suite" in joined
        assert "name" in joined
        assert "seconds" in joined
        assert "repeats" in joined
        assert "host" in joined
        assert "commit" in joined
        assert validate_point("nope")
        good = point(w=(1.0, 0.0)).to_dict()
        assert validate_point(good) == []


class TestRegressionRule:
    def test_injected_20pct_slowdown_is_flagged(self):
        base = point(house=(1.0, 0.001), tri=(0.5, 0.001))
        new = point(house=(1.25, 0.001), tri=(0.5, 0.001))
        report = compare_points(base, new, threshold_pct=20.0)
        assert not report.ok
        assert [r.name for r in report.regressions] == ["house"]
        regression = report.regressions[0]
        assert regression.slowdown_pct == pytest.approx(25.0)
        assert "REGRESSION" in report.render()

    def test_identical_rerun_passes(self):
        base = point(house=(1.0, 0.01), tri=(0.5, 0.005))
        report = compare_points(base, point(house=(1.0, 0.01),
                                            tri=(0.5, 0.005)))
        assert report.ok
        assert report.regressions == []
        assert "no regressions" in report.render()

    def test_noisy_workload_gets_a_wider_bar(self):
        # +30% slowdown, but both points measured with dispersion so
        # large that 3*(base+new) exceeds the delta: noise, not signal.
        base = point(flaky=(1.0, 0.1))
        new = point(flaky=(1.3, 0.1))
        report = compare_points(base, new, threshold_pct=20.0,
                                noise_mult=3.0)
        assert report.ok
        # The same delta with tight dispersion IS a regression.
        assert not compare_points(point(flaky=(1.0, 0.001)),
                                  point(flaky=(1.3, 0.001)),
                                  threshold_pct=20.0).ok

    def test_speedups_never_flag(self):
        report = compare_points(point(w=(1.0, 0.0)), point(w=(0.2, 0.0)))
        assert report.ok

    def test_workloads_in_only_one_point_are_reported_not_compared(self):
        base = point(old=(1.0, 0.0), shared=(1.0, 0.0))
        new = point(shared=(1.0, 0.0), brand_new=(9.0, 0.0))
        report = compare_points(base, new)
        assert report.ok
        assert report.compared == ["shared"]
        assert set(report.missing) == {"old", "brand-new"}
