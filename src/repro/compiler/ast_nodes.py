"""The DecoMine intermediate representation (paper section 7.1).

The AST captures a vertex-set-based matching process with the node types
the paper lists: loop nodes, vertex-set operation nodes, arithmetic
(scalar) operation nodes, hash-table operation nodes and a virtual root.
Two small control nodes are added on top — ``IfPositive`` (skip work when a
subpattern count is zero; pure strength reduction) and ``IfPred`` (gate on
a user label constraint, section 7.5).

Variables are single-assignment strings: ``v*`` vertex ids bound by loops,
``s*`` vertex sets, ``c*`` scalars.  Accumulators (declared on the root)
are the only mutable names; their updates are associative and commutative,
which is what makes the privatized parallel execution of section 7.4
correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.patterns.pattern import Pattern

__all__ = [
    "Node",
    "SetOp",
    "ScalarOp",
    "Loop",
    "LoopMeta",
    "Accumulate",
    "HashClear",
    "HashAdd",
    "HashGet",
    "EmitPartial",
    "IfPositive",
    "IfPred",
    "Root",
    "SET_OPS",
    "SCALAR_OPS",
    "node_uses",
    "node_def",
    "child_blocks",
    "walk",
    "substitute_args",
]

Arg = Union[str, int]

#: Vertex-set operations and their arity (-1 = variadic tail).
SET_OPS = {
    "universe": 0,        # all graph vertices
    "neighbors": 1,       # (vertex var)
    # Oriented adjacency: neighbors with a higher id, i.e. the tail
    # slice of the sorted row on an orientation-relabeled graph.  Only
    # the middle-end orient pass emits this op; the engine guarantees
    # such plans execute on an OrientedGraph.
    "oriented": 1,        # (vertex var)
    "intersect": 2,       # (set, set)
    "subtract": 2,        # (set, set)
    "copy": 1,            # (set)
    "trim_below": 2,      # (set, vertex var)  -> elements < var
    "trim_above": 2,      # (set, vertex var)  -> elements > var
    # Bounded (trim-fused) forms, produced by the middle-end fuse pass
    # from an intersect/subtract immediately trimmed by a symmetry
    # restriction; they map 1:1 onto the repro.runtime.setops kernels.
    "intersect_upto": 3,  # (set, set, vertex var) -> (a ∩ b) < var
    "intersect_from": 3,  # (set, set, vertex var) -> (a ∩ b) > var
    "subtract_upto": 3,   # (set, set, vertex var) -> (a - b) < var
    "subtract_from": 3,   # (set, set, vertex var) -> (a - b) > var
    "exclude": -1,        # (set, vertex var...)
    "filter_label": 2,    # (set, label const)
    "label_universe": 1,  # (label const)
}

SCALAR_OPS = {
    "const": 1,     # (int)
    "size": 1,      # (set)
    "mul": 2,
    "add": 2,
    "sub": 2,
    "floordiv": 2,
}


class Node:
    """Base marker class for AST nodes."""

    __slots__ = ()


@dataclass
class LoopMeta:
    """Cost-model annotations attached to every loop (paper section 6).

    ``prefix`` is the pattern "reaching this level": the enforced edges
    among the already-matched vertices plus the vertex this loop binds.
    The approximate-mining cost model estimates the loop's total iteration
    count by the approximate count of this pattern.
    """

    prefix: Optional[Pattern] = None
    constraint_degree: int = 0
    num_trims: int = 0
    label: Optional[int] = None
    role: str = "direct"  # 'vc' | 'extension' | 'shrinkage' | 'direct'


@dataclass
class SetOp(Node):
    target: str
    op: str
    args: tuple[Arg, ...]

    def __post_init__(self) -> None:
        arity = SET_OPS.get(self.op)
        if arity is None:
            raise ValueError(f"unknown set op {self.op!r}")
        if arity >= 0 and len(self.args) != arity:
            raise ValueError(f"{self.op} expects {arity} args, got {self.args}")


@dataclass
class ScalarOp(Node):
    target: str
    op: str
    args: tuple[Arg, ...]

    def __post_init__(self) -> None:
        if self.op not in SCALAR_OPS:
            raise ValueError(f"unknown scalar op {self.op!r}")


@dataclass
class Loop(Node):
    var: str
    source: str
    body: list[Node]
    meta: LoopMeta = field(default_factory=LoopMeta)


@dataclass
class Accumulate(Node):
    """``target += value`` on a root-declared accumulator."""

    target: str
    value: Arg


@dataclass
class HashClear(Node):
    table: int


@dataclass
class HashAdd(Node):
    table: int
    key: tuple[str, ...]


@dataclass
class HashGet(Node):
    target: str
    table: int
    key: tuple[str, ...]


@dataclass
class EmitPartial(Node):
    """Deliver a partial embedding to the user UDF (paper section 4).

    ``index`` identifies the subpattern; ``vertices`` are the bound vertex
    variables in ascending original-pattern-vertex order; ``count`` is the
    scalar holding the number of whole-pattern embeddings expandable from
    this partial embedding.
    """

    index: int
    vertices: tuple[str, ...]
    count: Arg


@dataclass
class IfPositive(Node):
    scalar: str
    body: list[Node]
    #: Loop metadata of the nest that accumulated ``scalar`` (attached by
    #: the builder for subpattern-count guards).  Cost models use it to
    #: estimate the probability the guard passes: on sparse graphs most
    #: cutting-set matches have zero extensions for some subpattern, so
    #: charging guarded bodies fully would grossly misprice decomposition.
    gate_metas: tuple["LoopMeta", ...] | None = None


@dataclass
class IfPred(Node):
    """Gate on a user predicate over bound vertices (label constraints)."""

    pred: int
    vertices: tuple[str, ...]
    body: list[Node]


@dataclass
class Root(Node):
    body: list[Node]
    accumulators: tuple[str, ...] = ()
    num_tables: int = 0
    num_preds: int = 0
    outer_parallel: bool = True


# ----------------------------------------------------------------------
# Generic traversal helpers used by the optimization passes
# ----------------------------------------------------------------------

def node_def(node: Node) -> Optional[str]:
    """The variable this node defines, if any."""
    if isinstance(node, (SetOp, ScalarOp, HashGet)):
        return node.target
    if isinstance(node, Loop):
        return node.var
    return None


def node_uses(node: Node) -> set[str]:
    """Variables this node reads (not counting its child blocks)."""
    if isinstance(node, (SetOp, ScalarOp)):
        return {a for a in node.args if isinstance(a, str)}
    if isinstance(node, Loop):
        return {node.source}
    if isinstance(node, Accumulate):
        return {node.value} if isinstance(node.value, str) else set()
    if isinstance(node, (HashAdd,)):
        return set(node.key)
    if isinstance(node, HashGet):
        return set(node.key)
    if isinstance(node, EmitPartial):
        uses = set(node.vertices)
        if isinstance(node.count, str):
            uses.add(node.count)
        return uses
    if isinstance(node, IfPositive):
        return {node.scalar}
    if isinstance(node, IfPred):
        return set(node.vertices)
    return set()


def child_blocks(node: Node) -> list[list[Node]]:
    """Mutable child statement blocks of a node."""
    if isinstance(node, (Loop, IfPositive, IfPred)):
        return [node.body]
    if isinstance(node, Root):
        return [node.body]
    return []


def walk(node: Node) -> Iterable[Node]:
    """Pre-order traversal of the subtree rooted at ``node``."""
    yield node
    for block in child_blocks(node):
        for child in block:
            yield from walk(child)


def substitute_args(node: Node, mapping: dict[str, str]) -> None:
    """Rewrite variable references through ``mapping`` in place.

    Child blocks are not visited; callers walk the tree themselves.
    Definition targets are not rewritten.
    """

    def sub(a: Arg) -> Arg:
        return mapping.get(a, a) if isinstance(a, str) else a

    if isinstance(node, (SetOp, ScalarOp)):
        node.args = tuple(sub(a) for a in node.args)
    elif isinstance(node, Loop):
        node.source = mapping.get(node.source, node.source)
    elif isinstance(node, Accumulate):
        node.value = sub(node.value)
    elif isinstance(node, HashAdd):
        node.key = tuple(mapping.get(k, k) for k in node.key)
    elif isinstance(node, HashGet):
        node.key = tuple(mapping.get(k, k) for k in node.key)
    elif isinstance(node, EmitPartial):
        node.vertices = tuple(mapping.get(v, v) for v in node.vertices)
        node.count = sub(node.count)
    elif isinstance(node, IfPositive):
        node.scalar = mapping.get(node.scalar, node.scalar)
    elif isinstance(node, IfPred):
        node.vertices = tuple(mapping.get(v, v) for v in node.vertices)
