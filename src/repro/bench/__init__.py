"""Benchmark harness: timing, reporting, shared workloads, trajectory."""

from repro.bench.harness import (
    Measurement,
    measure_cell,
    median,
    repeat_call,
    speedup,
    spread,
    time_call,
    time_call_preemptive,
)
from repro.bench.reporting import Table
from repro.bench.trajectory import (
    ComparisonReport,
    TrajectoryPoint,
    WorkloadPoint,
    compare_points,
    load_points,
    measure_suite,
    validate_point,
    write_point,
)
from repro.bench.workloads import (
    SYSTEM_NAMES,
    make_system,
    profile_for,
    session_for,
)

__all__ = [
    "Measurement",
    "time_call_preemptive",
    "measure_cell",
    "speedup",
    "time_call",
    "repeat_call",
    "median",
    "spread",
    "Table",
    "SYSTEM_NAMES",
    "make_system",
    "profile_for",
    "session_for",
    "TrajectoryPoint",
    "WorkloadPoint",
    "ComparisonReport",
    "measure_suite",
    "write_point",
    "load_points",
    "compare_points",
    "validate_point",
]
