"""Frozen request/response messages: the redesigned mining surface.

One request shape — :class:`MiningRequest` — describes every unit of
work the system performs, whether it enters through the library
(``DecoMine.get_pattern_count`` builds one internally), the daemon's
JSON-lines socket (``repro submit``), or a test harness.  One response
shape — :class:`MiningResponse` — carries everything a caller can ask
about a finished run: the count, whether the plan came out of the
persistent plan cache, the run id the ledger recorded, the metrics
snapshot, and the salvage view for cancelled runs.

Both are frozen dataclasses with deterministic wire codecs
(:meth:`MiningRequest.to_wire` / :meth:`MiningRequest.from_wire`), so
the in-process and over-the-socket paths share one validation point.
Patterns travel as ``{"n": ..., "edges": [...], "labels": ...}`` (or a
bare catalog name like ``"house"``); callables — emit UDFs, constraint
predicates — cannot cross the wire and therefore live *outside* the
request: ``DecoMine.submit`` takes them as separate arguments, and the
daemon only accepts ``mode="count"`` requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.exceptions import ReproError
from repro.patterns import catalog
from repro.patterns.pattern import Pattern

__all__ = [
    "MiningRequest",
    "MiningResponse",
    "batch_requests_from_wire",
    "batch_requests_to_wire",
    "pattern_from_wire",
    "pattern_to_wire",
]

#: Catalog names accepted as a bare-string pattern on the wire.
_NAMED_PATTERNS = {
    "triangle": catalog.triangle,
    "tailed_triangle": catalog.tailed_triangle,
    "diamond": catalog.diamond,
    "house": catalog.house,
    "gem": catalog.gem,
    "bowtie": catalog.bowtie,
    "net": catalog.net,
}
_PARAMETRIC_PATTERNS = {
    "chain": catalog.chain,
    "cycle": catalog.cycle,
    "clique": catalog.clique,
    "star": catalog.star,
}


def pattern_to_wire(pattern: Pattern) -> dict:
    """A JSON-able encoding of a pattern (exact, not canonicalized)."""
    return {
        "n": pattern.n,
        "edges": sorted([u, v] for u, v in pattern.edge_set),
        "labels": list(pattern.labels) if pattern.labels is not None else None,
        "name": pattern.name,
    }


def pattern_from_wire(spec) -> Pattern:
    """Decode a wire pattern: a dict, a catalog name, or a Pattern.

    Accepts ``"house"``, ``"5-cycle"``/``"4-clique"``-style parametric
    names, or the dict :func:`pattern_to_wire` produces.
    """
    if isinstance(spec, Pattern):
        return spec
    if isinstance(spec, str):
        if spec in _NAMED_PATTERNS:
            return _NAMED_PATTERNS[spec]()
        head, _, tail = spec.partition("-")
        if tail in _PARAMETRIC_PATTERNS and head.isdigit():
            return _PARAMETRIC_PATTERNS[tail](int(head))
        raise ReproError(f"unknown pattern name {spec!r}")
    if isinstance(spec, dict):
        try:
            return Pattern(
                int(spec["n"]),
                [(int(u), int(v)) for u, v in spec["edges"]],
                labels=spec.get("labels"),
                name=spec.get("name"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed wire pattern: {exc}") from None
    raise ReproError(f"cannot decode pattern from {type(spec).__name__}")


@dataclass(frozen=True)
class MiningRequest:
    """One unit of mining work, independent of how it arrives.

    ``engine`` and ``deadline_s`` are *overrides*: None means "use the
    session's / daemon's defaults".  ``constraints`` holds only the
    wire-safe structure (tuples of pattern-vertex ids); the matching
    predicates travel out-of-band.
    """

    pattern: Pattern
    mode: str = "count"
    induced: bool = False
    constraints: tuple[tuple[int, ...], ...] = ()
    engine: "object | None" = None  # EngineOptions, kept untyped for wire
    deadline_s: float | None = None
    client_id: str = "local"
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("count", "mine", "constrained"):
            raise ReproError(
                f"MiningRequest.mode must be count/mine/constrained, "
                f"got {self.mode!r}"
            )
        if self.mode != "constrained" and self.constraints:
            raise ReproError("constraints require mode='constrained'")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ReproError("deadline_s must be positive")

    def to_wire(self) -> dict:
        if self.mode != "count":
            # UDFs/predicates cannot be serialized; only counting
            # requests are daemon-eligible.
            raise ReproError(
                f"mode={self.mode!r} requests cannot cross the wire"
            )
        wire = {
            "pattern": pattern_to_wire(self.pattern),
            "mode": self.mode,
            "induced": self.induced,
            "client_id": self.client_id,
            "request_id": self.request_id,
        }
        if self.deadline_s is not None:
            wire["deadline_s"] = self.deadline_s
        if self.engine is not None:
            wire["engine"] = _engine_to_wire(self.engine)
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "MiningRequest":
        if not isinstance(wire, dict):
            raise ReproError("request must be a JSON object")
        unknown = set(wire) - {
            "pattern", "mode", "induced", "deadline_s", "engine",
            "client_id", "request_id",
        }
        if unknown:
            raise ReproError(f"unknown request fields: {sorted(unknown)}")
        if "pattern" not in wire:
            raise ReproError("request is missing 'pattern'")
        engine = wire.get("engine")
        return cls(
            pattern=pattern_from_wire(wire["pattern"]),
            mode=str(wire.get("mode", "count")),
            induced=bool(wire.get("induced", False)),
            engine=_engine_from_wire(engine) if engine is not None else None,
            deadline_s=(
                float(wire["deadline_s"])
                if wire.get("deadline_s") is not None else None
            ),
            client_id=str(wire.get("client_id", "local")),
            request_id=str(wire.get("request_id", "")),
        )


@dataclass(frozen=True)
class MiningResponse:
    """Everything a caller can ask about one finished request."""

    request_id: str
    client_id: str
    ok: bool
    count: int | None = None
    raw_count: int = 0
    mode: str = "count"
    run_id: str = ""
    plan_key: str = ""
    plan_cache_hit: bool = False
    seconds: float = 0.0
    cancelled: str | None = None
    salvage: dict | None = None
    metrics: dict = field(default_factory=dict)
    error: str | None = None
    #: Non-empty when the response came out of a batch DAG run
    #: (``DecoMine.submit_batch`` / the daemon's ``submit_batch`` op):
    #: every response of one batch shares the id the ledger tagged the
    #: node executions with.
    batch_id: str = ""

    def to_wire(self) -> dict:
        wire = {f.name: getattr(self, f.name) for f in fields(self)}
        wire["salvage"] = dict(self.salvage) if self.salvage else None
        wire["metrics"] = dict(self.metrics)
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "MiningResponse":
        if not isinstance(wire, dict):
            raise ReproError("response must be a JSON object")
        names = {f.name for f in fields(cls)}
        unknown = set(wire) - names
        if unknown:
            raise ReproError(f"unknown response fields: {sorted(unknown)}")
        kwargs = {name: wire[name] for name in names if name in wire}
        if "constraints" in kwargs:  # pragma: no cover - defensive
            kwargs["constraints"] = tuple(
                tuple(v) for v in kwargs["constraints"])
        return cls(**kwargs)


def batch_requests_to_wire(requests) -> list[dict]:
    """Encode a request batch for the daemon's ``submit_batch`` op."""
    requests = list(requests)
    if not requests:
        raise ReproError("a batch needs at least one request")
    return [request.to_wire() for request in requests]


def batch_requests_from_wire(wire) -> list[MiningRequest]:
    """Decode and validate a ``submit_batch`` request payload.

    The payload must be a non-empty JSON array; every element goes
    through the single-request validation (unknown fields rejected,
    count mode only).
    """
    if not isinstance(wire, list):
        raise ReproError("batch must be a JSON array of requests")
    if not wire:
        raise ReproError("batch must contain at least one request")
    return [MiningRequest.from_wire(item) for item in wire]


def _engine_to_wire(engine) -> dict:
    from dataclasses import asdict

    wire = asdict(engine)
    wire.pop("faults", None)  # fault plans are a local testing affordance
    wire.pop("progress", None)
    return wire


def _engine_from_wire(wire: dict):
    from repro.runtime.engine import EngineOptions

    if not isinstance(wire, dict):
        raise ReproError("engine override must be a JSON object")
    allowed = {
        "workers", "chunks_per_worker", "executor", "shared_graph",
        "cache", "orientation",
    }
    unknown = set(wire) - allowed
    if unknown:
        raise ReproError(f"unknown engine fields: {sorted(unknown)}")
    return EngineOptions(**{k: wire[k] for k in allowed if k in wire})
