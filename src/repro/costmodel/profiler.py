"""Graph profiling for the cost models (paper Figure 10).

``profile_graph`` measures the statistics every model needs (connection
probability, locality probability, label histogram) and — for the
approximate-mining model — builds the pattern-count table: sample a fixed
edge budget, estimate the injective homomorphism count of every connected
pattern up to ``max_pattern_size`` by neighbor sampling, rescale to
full-graph magnitude, and cache the results keyed by canonical code.

Counts for patterns larger than the table (the paper: "DecoMine can
quickly run the profiling on demand and cache the results") are filled
lazily through :meth:`CostProfile.lookup`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.graph.csr import CSRGraph
from repro.graph.properties import connection_probability, estimate_local_probability
from repro.patterns.generation import all_connected_patterns_up_to
from repro.patterns.isomorphism import canonical_code
from repro.patterns.pattern import Pattern
from repro.sampling.edge_sampler import sample_edges, sample_vertices
from repro.sampling.neighbor_sampling import estimate_injective_homomorphisms

__all__ = ["CostProfile", "profile_graph"]

#: Default locality threshold alpha (paper section 6.1: "we empirically
#: choose alpha = 8").  Within pattern diameters every pair is local.
DEFAULT_ALPHA = 8


@dataclass(eq=False)
class CostProfile:
    """Everything the three cost models read about a graph."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    p: float
    p_local: float
    alpha: int
    label_fractions: dict[int, float] | None
    counts: dict[tuple, float] = field(default_factory=dict)
    max_table_size: int = 0
    profiling_seconds: float = 0.0
    sample_ratio: float = 1.0
    #: Orientation statistics, attached by the session when an oriented
    #: execution is requested (see :mod:`repro.graph.transform`).  All
    #: three cost models price ``oriented``-derived candidate sets by
    #: out-degree instead of full degree through these.
    orientation: str = "none"
    avg_out_degree: float = 0.0
    max_out_degree: float = 0.0
    # Lazy on-demand profiling state.
    _graph: CSRGraph | None = None
    _sample: CSRGraph | None = None
    _trials: int = 0
    _seed: int = 0

    def lookup(self, pattern: Pattern) -> float | None:
        """Approximate inj-hom count of (the unlabeled form of) a pattern.

        Returns ``None`` only when on-demand profiling is impossible
        (no graph attached).  A floor of 0.5 keeps ratios finite.
        """
        key = canonical_code(pattern.without_labels())
        value = self.counts.get(key)
        if value is None:
            if self._sample is None:
                return None
            value = self._estimate(pattern.without_labels())
            self.counts[key] = value
        return max(value, 0.5)

    def _estimate(self, pattern: Pattern) -> float:
        assert self._sample is not None
        estimate = estimate_injective_homomorphisms(
            self._sample, pattern, trials=self._trials, seed=self._seed
        )
        if self.sample_ratio < 1.0:
            estimate /= self.sample_ratio ** pattern.num_edges
        return estimate

    def oriented_degree(self) -> float:
        """Expected out-degree under the active orientation.

        Falls back to ``avg_degree / 2`` when no measured statistic is
        attached: every orientation keeps exactly one arc per edge, so
        the mean out-degree is ``m / n`` regardless of the order.
        """
        if self.avg_out_degree > 0.0:
            return self.avg_out_degree
        return self.avg_degree / 2.0

    def label_fraction(self, label: int) -> float:
        """Fraction of graph vertices carrying ``label`` (1.0 if unlabeled)."""
        if not self.label_fractions:
            return 1.0
        return self.label_fractions.get(label, 1.0 / max(self.num_vertices, 1))


def profile_graph(
    graph: CSRGraph,
    max_pattern_size: int = 4,
    edge_budget: int = 4096,
    trials: int = 300,
    seed: int = 0,
    alpha: int = DEFAULT_ALPHA,
    p_local: float | None = None,
    sampler: str = "edge",
) -> CostProfile:
    """Profile a graph for cost estimation.

    ``sampler`` may be ``"edge"`` (the paper's choice) or ``"vertex"``
    (the ablation).  ``p_local`` overrides the measured locality
    probability, matching the paper's user-settable parameter.
    """
    started = time.perf_counter()
    measured_p_local = (
        p_local
        if p_local is not None
        else estimate_local_probability(graph, seed=seed)
    )
    label_fractions = None
    if graph.is_labeled:
        n = max(graph.num_vertices, 1)
        label_fractions = {
            label: graph.vertices_with_label(label).size / n
            for label in range(graph.num_labels())
        }

    if sampler == "edge":
        sample, ratio = sample_edges(graph, edge_budget, seed=seed)
    elif sampler == "vertex":
        sample, ratio = sample_vertices(graph, edge_budget, seed=seed)
        # Vertex sampling keeps ratio in vertex terms; approximate the
        # edge-retention ratio for rescaling by the squared vertex ratio.
        ratio = ratio * ratio
    else:
        raise ValueError(f"unknown sampler {sampler!r}")

    counts: dict[tuple, float] = {}
    for index, pattern in enumerate(
        all_connected_patterns_up_to(max_pattern_size)
    ):
        estimate = estimate_injective_homomorphisms(
            sample, pattern, trials=trials, seed=seed + 17 * index
        )
        if ratio < 1.0:
            estimate /= ratio ** pattern.num_edges
        counts[canonical_code(pattern)] = estimate

    profile = CostProfile(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=graph.avg_degree,
        p=connection_probability(graph),
        p_local=measured_p_local,
        alpha=alpha,
        label_fractions=label_fractions,
        counts=counts,
        max_table_size=max_pattern_size,
        sample_ratio=ratio,
        _graph=graph,
        _sample=sample,
        _trials=trials,
        _seed=seed,
    )
    profile.profiling_seconds = time.perf_counter() - started
    return profile
