"""Unit tests for the AST node helpers and both executors' op tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.ast_nodes import (
    Accumulate,
    EmitPartial,
    HashAdd,
    HashGet,
    IfPositive,
    IfPred,
    Loop,
    Root,
    ScalarOp,
    SetOp,
    child_blocks,
    node_def,
    node_uses,
    substitute_args,
    walk,
)
from repro.compiler.interpreter import run_interpreter
from repro.graph.csr import CSRGraph
from repro.runtime.context import ExecutionContext


@pytest.fixture(scope="module")
def graph():
    return CSRGraph.from_edges(
        5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)],
        labels=[0, 1, 0, 1, 0],
    )


class TestNodeValidation:
    def test_unknown_set_op_rejected(self):
        with pytest.raises(ValueError):
            SetOp("s1", "teleport", ())

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            SetOp("s1", "intersect", ("a",))

    def test_variadic_exclude_allowed(self):
        SetOp("s1", "exclude", ("s0", "v1", "v2", "v3"))

    def test_unknown_scalar_op_rejected(self):
        with pytest.raises(ValueError):
            ScalarOp("c1", "sqrt", ("c0",))


class TestHelpers:
    def test_node_def(self):
        assert node_def(SetOp("s1", "universe", ())) == "s1"
        assert node_def(ScalarOp("c1", "const", (0,))) == "c1"
        assert node_def(HashGet("c2", 0, ("v1",))) == "c2"
        assert node_def(Loop("v1", "s1", [])) == "v1"
        assert node_def(Accumulate("acc", 1)) is None

    def test_node_uses(self):
        assert node_uses(SetOp("s2", "intersect", ("s0", "s1"))) == {"s0", "s1"}
        assert node_uses(ScalarOp("c1", "mul", ("c0", 3))) == {"c0"}
        assert node_uses(Loop("v1", "s1", [])) == {"s1"}
        assert node_uses(Accumulate("acc", "c1")) == {"c1"}
        assert node_uses(Accumulate("acc", 5)) == set()
        assert node_uses(EmitPartial(0, ("v1", "v2"), "c3")) == \
            {"v1", "v2", "c3"}
        assert node_uses(IfPositive("c1", [])) == {"c1"}
        assert node_uses(IfPred(0, ("v1",), [])) == {"v1"}
        assert node_uses(HashAdd(0, ("v1", "v2"))) == {"v1", "v2"}

    def test_substitute_args_rewrites_refs_not_defs(self):
        node = SetOp("s2", "intersect", ("s0", "s1"))
        substitute_args(node, {"s0": "sX", "s2": "sY"})
        assert node.args == ("sX", "s1")
        assert node.target == "s2"

    def test_substitute_args_every_node_kind(self):
        mapping = {"a": "z"}
        loop = Loop("v", "a", [])
        substitute_args(loop, mapping)
        assert loop.source == "z"
        emit = EmitPartial(0, ("a",), "a")
        substitute_args(emit, mapping)
        assert emit.vertices == ("z",) and emit.count == "z"
        guard = IfPositive("a", [])
        substitute_args(guard, mapping)
        assert guard.scalar == "z"
        pred = IfPred(1, ("a", "b"), [])
        substitute_args(pred, mapping)
        assert pred.vertices == ("z", "b")
        get = HashGet("t", 0, ("a",))
        substitute_args(get, mapping)
        assert get.key == ("z",)

    def test_walk_and_child_blocks(self):
        inner = Accumulate("acc", 1)
        loop = Loop("v1", "s1", [inner])
        root = Root([SetOp("s1", "universe", ()), loop],
                    accumulators=("acc",))
        assert [type(n).__name__ for n in walk(root)] == \
            ["Root", "SetOp", "Loop", "Accumulate"]
        assert child_blocks(loop) == [[inner]]
        assert child_blocks(inner) == []


class TestInterpreterOps:
    def run(self, body, graph, **ctx_kwargs):
        root = Root(body, accumulators=("acc",))
        ctx = ExecutionContext(**ctx_kwargs)
        return run_interpreter(root, graph, ctx)["acc"]

    def test_label_universe_and_filter(self, graph):
        body = [
            SetOp("s1", "label_universe", (0,)),
            ScalarOp("c1", "size", ("s1",)),
            Accumulate("acc", "c1"),
        ]
        assert self.run(body, graph) == 3  # labels [0,1,0,1,0]

    def test_copy_and_subtract(self, graph):
        body = [
            SetOp("s1", "universe", ()),
            SetOp("s2", "copy", ("s1",)),
            SetOp("s3", "label_universe", (1,)),
            SetOp("s4", "subtract", ("s2", "s3")),
            ScalarOp("c1", "size", ("s4",)),
            Accumulate("acc", "c1"),
        ]
        assert self.run(body, graph) == 3

    def test_trims_and_arithmetic(self, graph):
        body = [
            SetOp("s1", "universe", ()),
            Loop("v1", "s1", [
                SetOp("s2", "neighbors", ("v1",)),
                SetOp("s3", "trim_below", ("s2", "v1")),
                ScalarOp("c1", "size", ("s3",)),
                Accumulate("acc", "c1"),
            ]),
        ]
        # Sum over v of |N(v) ∩ {< v}| = number of edges.
        assert self.run(body, graph) == graph.num_edges

    def test_scalar_ops(self, graph):
        body = [
            ScalarOp("c1", "const", (7,)),
            ScalarOp("c2", "add", ("c1", 3)),
            ScalarOp("c3", "sub", ("c2", 4)),
            ScalarOp("c4", "mul", ("c3", "c3")),
            ScalarOp("c5", "floordiv", ("c4", 2)),
            Accumulate("acc", "c5"),
        ]
        assert self.run(body, graph) == 18  # ((7+3-4)^2)//2

    def test_predicates(self, graph):
        body = [
            SetOp("s1", "universe", ()),
            Loop("v1", "s1", [
                IfPred(0, ("v1",), [Accumulate("acc", 1)]),
            ]),
        ]
        assert self.run(body, graph,
                        predicates=[lambda v: v % 2 == 0]) == 3

    def test_unknown_node_rejected(self, graph):
        class Bogus:
            pass

        root = Root([Bogus()], accumulators=())
        with pytest.raises(TypeError):
            run_interpreter(root, graph, ExecutionContext())
