"""Chunk-level fault-tolerant execution supervisor.

The engine's fork-pool path (paper §7.4) statically cuts the outermost
loop into chunks; because every chunk accumulates into associative/
commutative counters, any chunk is safely *re-executable*.  The
supervisor exploits that: it tracks per-chunk state
(pending → running → done/failed), re-dispatches chunks lost to worker
death or wedged workers, retries chunks that raised (capped exponential
backoff), enforces per-chunk timeouts and a whole-run deadline, and
checkpoints completed chunks so a killed run resumes by skipping them.

Recovery ladder, mildest first:

1. **Chunk exception** — the worker survives; the chunk is requeued
   with backoff until ``RunBudget.max_chunk_retries`` is exhausted.
2. **Memory casualty (bisection)** — a chunk that fails with
   :class:`MemoryError` (a ballooning frontier, an injected ``"oom"``
   fault) or a watchdog kill is **bisected**: split at its
   degree-weighted midpoint (the same prefix sums the engine cuts
   chunks by) into two fresh half-chunks and requeued, down to
   ``ResourceBudget.min_chunk_weight`` — finer-grained work instead of
   retrying the whole chunk until the budget burns out.
3. **Chunk timeout** — on a resource-governed run the supervisor flips
   the shared cancel token with reason ``"preempt"``: every in-flight
   chunk parks itself at its next poll, completed results are drained
   during ``RunBudget.drain_grace_s`` (healthy work is never thrown
   away), the wedged chunk is bisected, and the pool is recycled only
   if a worker is still unresponsive after the grace window.  Without
   a governor the pool cannot cancel a running task, so the legacy
   ladder applies: drain finished results, terminate, restart.
4. **Worker death** — detected by a pool health check (worker pid set
   or exit codes changed).  ``multiprocessing.Pool`` replaces dead
   workers but silently loses their in-flight task, so the supervisor
   drains finished results, terminates the pool, and restarts it,
   re-dispatching every unfinished chunk (each in-flight chunk is
   charged one attempt — a dispatch that produced no result).
5. **Pool failure cap** — after ``max_pool_restarts`` restarts the pool
   is abandoned and remaining chunks degrade to in-process serial
   execution (still retried; ``"die"`` faults are simulated there).
6. **Retry exhaustion / deadline / retry budget / cancellation** — the
   chunk surfaces a structured :class:`ChunkFailure` on
   ``ExecutionResult.failures`` instead of crashing the run;
   ``embedding_count`` then refuses with an
   :class:`~repro.exceptions.ExecutionError`.  Deadline expiry and
   SIGINT on governed runs cancel cooperatively through the token —
   no pool teardown — and the outcome carries the completed work
   fraction (salvage) of everything that did finish.

Checkpointing writes one JSON line per completed chunk (accumulators,
chunk time, kernel stats, attempts) keyed by a plan fingerprint that
covers the plan source, executor, graph shape, and chunk count — aux
(global-shrinkage) plans recurse with the same store under their own
fingerprints, so resume is exact for decomposed counts too.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.compiler.build import COUNT_ACC
from repro.exceptions import ExecutionError
from repro.observe.trace import graft_worker_spans, span
from repro.runtime.context import ExecutionContext
from repro.runtime.resources import ChunkCancelled, MemoryWatchdog

__all__ = [
    "RunBudget",
    "RunPolicy",
    "ChunkFailure",
    "CheckpointStore",
    "Supervisor",
    "SupervisorOutcome",
    "plan_fingerprint",
]


@dataclass(frozen=True)
class RunBudget:
    """Retry/deadline policy for one supervised execution.

    Parameters
    ----------
    deadline_s:
        Whole-run wall-clock deadline (spans aux-plan corrections);
        chunks not finished when it expires fail with reason
        ``"deadline"``.
    chunk_timeout_s:
        Per-chunk timeout on the pool path (unenforceable in-process,
        where a chunk cannot be preempted).  A chunk whose result does
        not arrive in time is presumed lost and triggers a pool restart.
    max_chunk_retries:
        Re-dispatches allowed per chunk before it fails permanently.
    max_retries:
        Optional global retry budget across all chunks of one plan.
    backoff_s / backoff_cap_s:
        Capped exponential backoff between retries of the same chunk:
        ``min(backoff_s * 2**(attempt-1), backoff_cap_s)``.
    max_pool_restarts:
        Pool rebuilds tolerated before degrading to serial execution.
    poll_interval_s:
        Supervisor polling granularity on the pool path.
    drain_grace_s:
        On resource-governed runs, how long to keep collecting results
        from token-cancelled in-flight chunks before giving up on them
        (cooperative preemption needs each worker to reach its next
        poll site; results that land inside the window are kept).
    """

    deadline_s: float | None = None
    chunk_timeout_s: float | None = None
    max_chunk_retries: int = 3
    max_retries: int | None = None
    backoff_s: float = 0.02
    backoff_cap_s: float = 1.0
    max_pool_restarts: int = 2
    poll_interval_s: float = 0.005
    drain_grace_s: float = 0.5

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ExecutionError("deadline_s must be >= 0")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ExecutionError("chunk_timeout_s must be > 0")
        if self.drain_grace_s < 0:
            raise ExecutionError("drain_grace_s must be >= 0")
        if self.max_chunk_retries < 0:
            raise ExecutionError("max_chunk_retries must be >= 0")
        if self.max_retries is not None and self.max_retries < 0:
            raise ExecutionError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ExecutionError("backoff must be >= 0")
        if self.max_pool_restarts < 0:
            raise ExecutionError("max_pool_restarts must be >= 0")
        if self.poll_interval_s <= 0:
            raise ExecutionError("poll_interval_s must be > 0")

    def backoff_for(self, attempt: int) -> float:
        """Sleep before re-dispatching after failed ``attempt`` (1-based)."""
        return min(self.backoff_s * (2 ** max(0, attempt - 1)),
                   self.backoff_cap_s)


@dataclass(frozen=True)
class RunPolicy:
    """Session-level bundle: budget + checkpoint + supervision toggle.

    ``DecoMine(run_policy=...)`` accepts this (or a bare
    :class:`RunBudget`) and threads it into every counting execution.
    """

    budget: RunBudget | None = None
    checkpoint: "CheckpointStore | str | Path | None" = None
    supervised: bool | None = None
    #: Optional :class:`~repro.runtime.resources.ResourceBudget` turning
    #: the run into a resource-governed one (cancel token + watchdog +
    #: bisection ladder).
    resources: "object | None" = None


@dataclass(frozen=True)
class ChunkFailure:
    """A chunk that could not be completed, with its exception chain."""

    index: int
    bounds: tuple[int, int]
    attempts: int
    # "exception" | "timeout" | "worker-lost" | "deadline" | "retry-budget"
    # | "cancelled" | "memory" | "watchdog"
    reason: str
    error: str | None = None
    exc_chain: tuple[str, ...] = ()

    def describe(self) -> str:
        detail = f": {self.error}" if self.error else ""
        return (f"chunk {self.index} [{self.bounds[0]}, {self.bounds[1]}) "
                f"failed after {self.attempts} attempt(s) "
                f"({self.reason}){detail}")


def _exception_chain(exc: BaseException) -> tuple[str, ...]:
    """``repr`` of the exception and its ``__cause__``/``__context__`` chain."""
    chain: list[str] = []
    seen: set[int] = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(repr(current))
        current = current.__cause__ or current.__context__
    return tuple(chain)


def plan_fingerprint(plan, graph, executor: str, num_chunks: int) -> str:
    """Stable identity of one (plan, graph, executor, chunking) run.

    Covers everything that determines a chunk's accumulator values, so a
    checkpoint recorded under this key is only ever replayed into an
    identical execution.  The plan is identified by its spec and pattern
    (code generation is a pure function of those, whereas ``plan.source``
    embeds gensym counter state that varies across compilations); chunk
    count is included because resume is per-chunk — a run re-chunked
    differently ignores old records and starts clean.
    """
    digest = hashlib.sha256()
    for part in (
        plan.mode, str(plan.info.divisor), executor,
        str(graph.num_vertices), str(graph.num_edges), str(num_chunks),
        repr(plan.pattern), repr(plan.spec),
    ):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


class CheckpointStore:
    """Append-only JSON-lines log of completed chunks.

    One record per line::

        {"plan": <fingerprint>, "chunk": 3, "bounds": [120, 160],
         "accumulators": {...}, "seconds": 0.8, "stats": {...},
         "attempts": 2}

    Records are flushed per chunk, so a killed process loses at most the
    chunk it was writing; a torn final line is skipped on load.  Several
    plans (a decomposed plan and its aux corrections, or many patterns
    of one census) may share a store — records are filtered by
    fingerprint on load.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fh = None

    def load(self, plan_key: str) -> dict[int, dict]:
        """All well-formed records for ``plan_key``, keyed by chunk index."""
        records: dict[int, dict] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write from a killed run
            if not isinstance(record, dict) or record.get("plan") != plan_key:
                continue
            try:
                records[int(record["chunk"])] = record
            except (KeyError, TypeError, ValueError):
                continue
        return records

    def record(
        self,
        plan_key: str,
        index: int,
        bounds: tuple[int, int],
        accumulators: dict[str, int],
        seconds: float,
        stats: dict[str, int],
        attempts: int,
    ) -> None:
        if self._fh is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(
            {
                "plan": plan_key,
                "chunk": index,
                "bounds": [int(bounds[0]), int(bounds[1])],
                "accumulators": accumulators,
                "seconds": seconds,
                "stats": stats,
                "attempts": attempts,
            },
            sort_keys=True,
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class SupervisorOutcome:
    """What one supervised chunk sweep produced."""

    accumulators: dict[str, int] = field(default_factory=dict)
    chunk_seconds: list[float] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    failures: list[ChunkFailure] = field(default_factory=list)
    resumed_chunks: int = 0
    pool_restarts: int = 0
    #: Cancel-token reason that stopped the run early, or None if it
    #: ran to completion ("deadline" | "interrupt" | "watchdog").
    cancelled: str | None = None
    bisections: int = 0
    watchdog_kills: int = 0
    frontier_downshifts: int = 0
    # Salvage accounting: degree-weighted work and chunk tallies at the
    # moment the sweep ended (work_done/work_total is the completed
    # fraction a cancelled run still banked).
    work_done: int = 0
    work_total: int = 0
    chunks_done: int = 0
    chunks_total: int = 0


class Supervisor:
    """Drives one plan's chunks to completion despite partial failure.

    The caller (``execute_plan``) owns chunking, aux-plan recursion, and
    result assembly; the supervisor owns dispatch, recovery, and the
    checkpoint.  Chunk workers are the engine's fork-pool workers; the
    in-process serial path mirrors them with ``allow_exit=False`` fault
    semantics and per-chunk contexts.
    """

    def __init__(
        self,
        plan,
        graph,
        ctx: ExecutionContext,
        ranges: list[tuple[int, int]],
        workers: int,
        executor: str,
        budget: RunBudget | None = None,
        checkpoint: CheckpointStore | None = None,
        deadline_at: float | None = None,
        cache: bool | int = True,
        progress=None,
        shared_graph: bool = True,
        resources=None,
    ) -> None:
        self.plan = plan
        self.graph = graph
        self.predicates = list(ctx.predicates)
        self.faults = ctx.faults
        self.cache = cache
        self.shared_graph = shared_graph
        self.bounds = dict(enumerate(ranges))
        self.workers = workers
        self.executor = executor
        self.budget = budget or RunBudget()
        self.checkpoint = checkpoint
        if deadline_at is None and self.budget.deadline_s is not None:
            deadline_at = time.monotonic() + self.budget.deadline_s
        self.deadline_at = deadline_at
        self.plan_key = plan_fingerprint(plan, graph, executor, len(ranges))
        # Per-chunk state: completed attempt counts, done accumulators.
        self.attempts: dict[int, int] = dict.fromkeys(self.bounds, 0)
        self.done: set[int] = set()
        self.out = SupervisorOutcome()
        # The resource governor (None on ungoverned runs): carries the
        # ResourceBudget and the shared cancel token.
        self.resources = (
            resources if resources is not None
            else getattr(ctx, "resources", None)
        )
        # Chunk weights from the degree-weighted prefix sums (the same
        # work proxy the oriented engine cuts chunk ranges by).  Always
        # computed: progress heartbeats advance by them, bisection cuts
        # at their midpoint, and salvage reports work_done/work_total.
        self.progress = progress
        self._started = time.monotonic()
        self._weights = {
            index: self._chunk_weight(bounds)
            for index, bounds in self.bounds.items()
        }
        self._work_total = sum(self._weights.values())
        self._work_done = 0
        # Bisected halves get fresh indices past the original chunking
        # so their checkpoint records never collide with the parents'.
        self._initial_chunks = len(ranges)
        self._next_index = len(ranges)
        # Pids the memory watchdog samples (workers + supervisor).
        self._watch_pids: list[int] = [os.getpid()]

    def _chunk_weight(self, bounds: tuple[int, int]) -> int:
        """Degree-weighted work estimate for one chunk (out-degree on
        oriented graphs, total degree otherwise, plus the constant
        per-vertex loop overhead)."""
        start, stop = bounds
        prefix = getattr(self.graph, "out_degree_prefix", None)
        if prefix is None:
            prefix = self.graph.degree_prefix
        return int(prefix[stop]) - int(prefix[start]) + (stop - start)

    def _heartbeat(self) -> None:
        if self.progress is None:
            return
        from repro.observe.progress import ProgressEvent

        self.progress(ProgressEvent(
            chunks_done=len(self.done),
            chunks_total=len(self.bounds),
            work_done=self._work_done,
            work_total=self._work_total,
            embeddings=self.out.accumulators.get(COUNT_ACC, 0),
            elapsed_s=time.monotonic() - self._started,
        ))

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> SupervisorOutcome:
        watchdog = self._start_watchdog()
        timer = self._start_deadline_timer()
        try:
            self._load_checkpoint()
            pending = [i for i in sorted(self.bounds) if i not in self.done]
            if pending and self.workers > 1 and hasattr(os, "fork"):
                pending = self._run_pool(pending)
            if pending:
                self._run_serial(pending)
        finally:
            if timer is not None:
                timer.cancel()
            if watchdog is not None:
                watchdog.stop()
                self.out.watchdog_kills = watchdog.kills
                self.out.frontier_downshifts = watchdog.downshifts
            self.out.work_done = self._work_done
            self.out.work_total = self._work_total
            self.out.chunks_done = len(self.done)
            self.out.chunks_total = len(self.bounds)
        return self.out

    # ------------------------------------------------------------------
    # Resource-governor plumbing (all no-ops on ungoverned runs)
    # ------------------------------------------------------------------
    def _token(self):
        gov = self.resources
        return gov.token if gov is not None else None

    def _token_reason(self) -> str | None:
        token = self._token()
        if token is None or not token.cancelled:
            return None
        return token.reason

    def _cancel(self, reason: str) -> None:
        token = self._token()
        if token is not None:
            token.cancel(reason)

    def _reset_token(self) -> None:
        token = self._token()
        if token is not None:
            token.reset()

    def _start_watchdog(self) -> MemoryWatchdog | None:
        gov = self.resources
        if gov is None or gov.token is None or gov.budget.max_rss_bytes is None:
            return None
        watchdog = MemoryWatchdog(
            gov.budget, gov.token, lambda: list(self._watch_pids)
        )
        watchdog.start()
        return watchdog

    def _start_deadline_timer(self) -> threading.Timer | None:
        """Flip the cancel token when the deadline passes, so in-flight
        chunks stop cooperatively instead of running to completion and
        being discarded at the next supervisor poll."""
        token = self._token()
        if token is None or self.deadline_at is None:
            return None
        timer = threading.Timer(
            max(0.0, self.deadline_at - time.monotonic()),
            self._deadline_cancel,
        )
        timer.daemon = True
        timer.start()
        return timer

    def _deadline_cancel(self) -> None:
        token = self._token()
        if token is not None and not token.cancelled:
            token.cancel("deadline")

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _deadline_expired(self, now: float | None = None) -> bool:
        if self.deadline_at is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline_at

    def _record_success(self, index, attempt, accumulators, seconds, stats,
                        spans=(), from_checkpoint: bool = False) -> None:
        if index in self.done:  # late duplicate after a pool restart
            return
        self.done.add(index)
        graft_worker_spans(list(spans))
        self.attempts[index] = max(self.attempts[index], attempt)
        for key, value in accumulators.items():
            self.out.accumulators[key] = (
                self.out.accumulators.get(key, 0) + value
            )
        self.out.chunk_seconds.append(seconds)
        for key, value in stats.items():
            self.out.stats[key] = self.out.stats.get(key, 0) + value
        if from_checkpoint:
            self.out.resumed_chunks += 1
        elif self.checkpoint is not None:
            self.checkpoint.record(
                self.plan_key, index, self.bounds[index], accumulators,
                seconds, stats, attempt,
            )
        self._work_done += self._weights.get(index, 0)
        if self.progress is not None:
            self._heartbeat()

    def _record_failure(self, index: int, attempt: int, reason: str,
                        exc: BaseException | None) -> bool:
        """Charge one failed attempt; True iff the chunk should retry."""
        self.attempts[index] = max(self.attempts[index], attempt)
        budget = self.budget
        exhausted = attempt > budget.max_chunk_retries
        over_budget = (
            budget.max_retries is not None
            and self.out.retries >= budget.max_retries
        )
        if exhausted or over_budget:
            self.out.failures.append(ChunkFailure(
                index=index,
                bounds=self.bounds[index],
                attempts=self.attempts[index],
                reason="retry-budget" if (over_budget and not exhausted)
                       else reason,
                error=repr(exc) if exc is not None else None,
                exc_chain=_exception_chain(exc) if exc is not None else (),
            ))
            return False
        self.out.retries += 1
        return True

    def _fail_remaining(self, indices, reason: str) -> None:
        for index in indices:
            if index in self.done:
                continue
            self.out.failures.append(ChunkFailure(
                index=index,
                bounds=self.bounds[index],
                attempts=self.attempts[index],
                reason=reason,
            ))

    def _load_checkpoint(self) -> None:
        if self.checkpoint is None:
            return
        leftovers: dict[int, dict] = {}
        for index, record in self.checkpoint.load(self.plan_key).items():
            bounds = self.bounds.get(index)
            if bounds is None or list(bounds) != record.get("bounds"):
                leftovers[index] = record
                continue
            self._replay_record(index, record)
        self._adopt_bisected(leftovers)

    def _replay_record(self, index: int, record: dict) -> None:
        self._record_success(
            index,
            int(record.get("attempts", 1)),
            {k: int(v) for k, v in record.get("accumulators", {}).items()},
            float(record.get("seconds", 0.0)),
            {k: int(v) for k, v in record.get("stats", {}).items()},
            from_checkpoint=True,
        )

    def _adopt_bisected(self, leftovers: dict[int, dict]) -> None:
        """Resume completed *bisected* chunks from a prior governed run.

        Bisected halves checkpoint under the same plan key with fresh
        indices (>= the initial chunk count) and bounds nested inside
        one original chunk.  For each pending parent whose recorded
        children tile part of its range without overlap, the parent is
        replaced by those children (replayed as done) plus fresh chunks
        covering the gaps, so resume is exact even mid-bisection.
        Overlapping or malformed records disqualify that parent's
        adoption and it stays pending whole — the torn-line tolerance
        of the store extends to torn *splits*.
        """
        if not leftovers:
            return
        # Reserve every recorded index up front so gap chunks added
        # below can never collide with a child adopted later.
        for index in leftovers:
            self._next_index = max(self._next_index, index + 1)
        by_parent: dict[int, list[tuple[int, dict]]] = {}
        for index, record in leftovers.items():
            if index < self._initial_chunks or index in self.bounds:
                continue
            rb = record.get("bounds")
            if (
                not isinstance(rb, list) or len(rb) != 2
                or not all(isinstance(v, int) for v in rb) or rb[0] >= rb[1]
            ):
                continue
            parent = next(
                (
                    p for p, (ps, pe) in self.bounds.items()
                    if p < self._initial_chunks and p not in self.done
                    and ps <= rb[0] and rb[1] <= pe
                ),
                None,
            )
            if parent is not None:
                by_parent.setdefault(parent, []).append((index, record))
        for parent, children in by_parent.items():
            children.sort(key=lambda item: item[1]["bounds"][0])
            accepted: list[tuple[int, dict]] = []
            cursor = None
            for index, record in children:
                lo, hi = record["bounds"]
                if cursor is not None and lo < cursor:
                    accepted = []  # overlap: stale records, replay none
                    break
                accepted.append((index, record))
                cursor = hi
            if not accepted:
                continue
            start, stop = self.bounds[parent]
            self._remove_chunk(parent)
            cursor = start
            for index, record in accepted:
                lo, hi = record["bounds"]
                if cursor < lo:
                    self._add_chunk((cursor, lo))
                self._install_chunk(index, (lo, hi))
                self._replay_record(index, record)
                cursor = hi
            if cursor < stop:
                self._add_chunk((cursor, stop))

    # ------------------------------------------------------------------
    # Chunk bisection (memory/timeout casualties on governed runs)
    # ------------------------------------------------------------------
    def _min_chunk_width(self) -> int:
        gov = self.resources
        return gov.budget.min_chunk_width if gov is not None else 1

    def _install_chunk(self, index: int, bounds: tuple[int, int]) -> int:
        if index not in self._weights:
            weight = self._chunk_weight(bounds)
            self._weights[index] = weight
            self._work_total += weight
        self.bounds[index] = bounds
        self.attempts.setdefault(index, 0)
        self._next_index = max(self._next_index, index + 1)
        return index

    def _add_chunk(self, bounds: tuple[int, int]) -> int:
        index = self._next_index
        self._next_index += 1
        return self._install_chunk(index, bounds)

    def _remove_chunk(self, index: int) -> None:
        self.bounds.pop(index, None)
        self.attempts.pop(index, None)
        self._work_total -= self._weights.pop(index, 0)

    def _weighted_midpoint(self, start: int, stop: int) -> int:
        """Vertex where the chunk's degree-weighted work halves (same
        ``prefix[x] + x`` proxy the engine cuts chunk ranges by),
        clamped so both halves keep the minimum width."""
        prefix = getattr(self.graph, "out_degree_prefix", None)
        if prefix is None:
            prefix = self.graph.degree_prefix

        def weight(x: int) -> int:
            return int(prefix[x]) + x

        target = (weight(start) + weight(stop)) // 2
        lo, hi = start + 1, stop - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if weight(mid) < target:
                lo = mid + 1
            else:
                hi = mid
        width = self._min_chunk_width()
        return max(start + width, min(lo, stop - width))

    def _bisect(self, index: int) -> list[int] | None:
        """Split a casualty chunk into two half-work chunks with fresh
        indices; None if it is already at minimum width."""
        start, stop = self.bounds[index]
        width = self._min_chunk_width()
        if stop - start < 2 * width:
            return None
        mid = self._weighted_midpoint(start, stop)
        self._remove_chunk(index)
        self.out.bisections += 1
        return [self._add_chunk((start, mid)), self._add_chunk((mid, stop))]

    def _handle_resource_failure(self, index, attempt, reason, exc,
                                 queue: dict) -> None:
        """Bisect a memory/watchdog/timeout casualty into the pool
        queue; only a minimum-width chunk falls back to whole-chunk
        retry (and eventually a structured failure)."""
        self.attempts[index] = max(self.attempts[index], attempt)
        children = self._bisect(index)
        if children is not None:
            now = time.monotonic()
            for child in children:
                queue[child] = now
            return
        if self._record_failure(index, attempt, reason, exc):
            queue[index] = time.monotonic() + self.budget.backoff_for(attempt)

    def _serial_resource_failure(self, index, attempt, reason, exc,
                                 queue: list) -> bool:
        """Serial-path twin of :meth:`_handle_resource_failure`; True
        iff ``index`` should be retried in place (children are pushed
        to the front of the serial queue instead)."""
        self.attempts[index] = max(self.attempts[index], attempt)
        children = self._bisect(index)
        if children is not None:
            queue[:0] = children
            return False
        if self._record_failure(index, attempt, reason, exc):
            self._backoff_sleep(attempt)
            return True
        return False

    def _backoff_sleep(self, attempt: int) -> None:
        pause = self.budget.backoff_for(attempt)
        if self.deadline_at is not None:
            pause = min(pause, max(0.0, self.deadline_at - time.monotonic()))
        if pause:
            time.sleep(pause)

    # ------------------------------------------------------------------
    # Pool path
    # ------------------------------------------------------------------
    def _run_pool(self, pending: list[int]) -> list[int]:
        """Run chunks on a fork pool; returns chunks left for serial."""
        import multiprocessing as mp

        from repro.runtime import engine

        mp_context = mp.get_context("fork")
        state = {
            "plan": self.plan,
            "graph": self.graph,
            "executor": self.executor,
            "predicates": self.predicates,
            "faults": self.faults,
            "cache": self.cache,
            # The governor rides into every worker: its CancelToken maps
            # the same shared-memory segment post-fork, so one flip in
            # the supervisor is visible at every executor poll site.
            "resources": self.resources,
        }
        # The shared segment outlives every pool epoch (restarts re-fork
        # replacement workers that must still resolve the descriptor) and
        # is unlinked in the same finally that releases the fork state —
        # worker deaths, ExecutionErrors and deadline bail-outs all pass
        # through here, so no path can leak it.
        shared_handle = engine._share_state_graph(state, self.shared_graph)
        token = engine._register_fork_state(state)
        try:
            while pending:
                if self._deadline_expired():
                    self.out.cancelled = self.out.cancelled or "deadline"
                    self._fail_remaining(pending, "deadline")
                    return []
                status, pending = self._pool_epoch(mp_context, token, pending)
                if status == "done":
                    return []
                self.out.pool_restarts += 1
                if self.out.pool_restarts > self.budget.max_pool_restarts:
                    return pending  # degrade to in-process serial
        finally:
            engine._release_fork_state(token)
            if shared_handle is not None:
                shared_handle.close()
        return []

    def _pool_epoch(self, mp_context, token, pending):
        """One pool lifetime: dispatch until done or a restart is needed."""
        from repro.runtime import engine

        budget = self.budget
        now = time.monotonic()
        queue: dict[int, float] = {i: now for i in pending}  # not-before
        inflight: dict[int, tuple] = {}  # index -> (result, started, attempt)
        pool = mp_context.Pool(
            processes=self.workers,
            initializer=engine._set_worker_token,
            initargs=(token,),
        )
        pids = {worker.pid for worker in pool._pool}
        self._watch_pids = sorted(pids) + [os.getpid()]
        try:
            while queue or inflight:
                now = time.monotonic()
                run_cancel = self._token_reason()
                if (
                    run_cancel in ("deadline", "interrupt")
                    or self._deadline_expired(now)
                ):
                    # Run-level stop: cancel cooperatively through the
                    # token (no pool teardown), keep whatever lands in
                    # the grace window, fail the rest structurally.
                    reason = run_cancel or "deadline"
                    if self._token() is not None:
                        self._cancel(reason)
                        self._grace_drain(inflight, queue)
                    else:
                        self._drain(inflight, queue)
                    self._fail_remaining(
                        list(queue) + list(inflight),
                        "deadline" if reason == "deadline" else "cancelled",
                    )
                    self.out.cancelled = self.out.cancelled or reason
                    return "done", []
                progressed = False
                if run_cancel is None:
                    for index in [i for i, t in queue.items() if t <= now]:
                        del queue[index]
                        attempt = self.attempts[index] + 1
                        result = pool.apply_async(
                            engine._chunk_worker,
                            ((index, attempt, *self.bounds[index]),),
                        )
                        inflight[index] = (result, now, attempt)
                        progressed = True
                restart_reason = None
                timed_out = None
                for index, (result, started, attempt) in list(inflight.items()):
                    if result.ready():
                        del inflight[index]
                        progressed = True
                        try:
                            self._record_success(*result.get())
                        except ChunkCancelled as exc:
                            self._pool_cancelled(index, attempt, exc, queue)
                        except MemoryError as exc:
                            self._handle_resource_failure(
                                index, attempt, "memory", exc, queue
                            )
                        except Exception as exc:
                            if self._record_failure(
                                index, attempt, "exception", exc
                            ):
                                queue[index] = (
                                    time.monotonic()
                                    + budget.backoff_for(attempt)
                                )
                    elif (
                        budget.chunk_timeout_s is not None
                        and time.monotonic() - started > budget.chunk_timeout_s
                    ):
                        restart_reason = "timeout"
                        timed_out = index
                        break
                if run_cancel == "watchdog" and not progressed:
                    # Hard RSS breach: every in-flight chunk parks at
                    # its next poll and is bisected; the pool is then
                    # recycled so the workers' bloated heaps actually
                    # go back to the OS (a cancelled chunk frees Python
                    # objects, not the process's high-water mark).
                    self._grace_drain(inflight, queue)
                    self._reset_token()
                    for index, (result, _s, attempt) in inflight.items():
                        if index not in self.done:
                            self._handle_resource_failure(
                                index, attempt, "watchdog", None, queue
                            )
                    return "restart", sorted(queue)
                if restart_reason is None and inflight:
                    # Health check: a replaced or exited worker means its
                    # in-flight task is lost forever (Pool repopulates
                    # workers but never re-runs their tasks).
                    alive = pool._pool
                    if (
                        any(w.exitcode is not None for w in alive)
                        or {w.pid for w in alive} != pids
                    ):
                        restart_reason = "worker-lost"
                if restart_reason == "timeout" and self._token() is not None:
                    # Cooperative preemption: flip the token so healthy
                    # in-flight chunks park at their next poll, keep
                    # every result that lands in the grace window,
                    # bisect the wedged chunk, and only recycle the
                    # pool if a worker is still unresponsive afterwards.
                    self._cancel("preempt")
                    self._grace_drain(inflight, queue, charge={timed_out})
                    self._reset_token()
                    if not inflight:
                        continue
                    for index, (result, _s, attempt) in inflight.items():
                        if index not in self.done:
                            self._handle_resource_failure(
                                index, attempt, "timeout", None, queue
                            )
                    return "restart", sorted(queue)
                if restart_reason is not None:
                    # Ungoverned ladder: the pool cannot cancel a
                    # running task, so the whole pool is recycled after
                    # draining finished results.
                    self._drain(inflight, queue)
                    for index, (result, started, attempt) in inflight.items():
                        if index in self.done:
                            continue
                        if self._record_failure(
                            index, attempt, restart_reason, None
                        ):
                            queue[index] = 0.0
                    return "restart", sorted(queue)
                if not progressed:
                    time.sleep(budget.poll_interval_s)
            return "done", []
        finally:
            pool.terminate()
            pool.join()

    def _pool_cancelled(self, index, attempt, exc, queue: dict) -> None:
        """Route one ChunkCancelled pool result by its cancel reason."""
        reason = getattr(exc, "reason", "interrupt")
        if reason == "watchdog":
            self._handle_resource_failure(index, attempt, "watchdog", exc,
                                          queue)
        elif reason == "preempt":
            queue[index] = time.monotonic()  # parked cooperatively
        else:  # deadline / interrupt: run-level branch fails the rest
            self.attempts[index] = max(self.attempts[index], attempt)
            self._fail_remaining(
                [index], "deadline" if reason == "deadline" else "cancelled"
            )
            self.out.cancelled = self.out.cancelled or reason

    def _grace_drain(self, inflight: dict, queue: dict,
                     charge=frozenset()) -> None:
        """Wait up to ``drain_grace_s`` for token-cancelled chunks.

        Completed results are recorded — healthy in-flight work is
        never discarded by a preemption.  Chunks that park with
        :class:`ChunkCancelled` are requeued uncharged unless listed in
        ``charge`` (the wedged chunk that caused the preemption), which
        are bisected or charged a timeout attempt.
        """
        deadline = time.monotonic() + self.budget.drain_grace_s
        while inflight:
            progressed = False
            for index, (result, _s, attempt) in list(inflight.items()):
                if not result.ready():
                    continue
                del inflight[index]
                progressed = True
                try:
                    self._record_success(*result.get())
                except ChunkCancelled as exc:
                    reason = getattr(exc, "reason", "interrupt")
                    if reason == "watchdog" or index in charge:
                        self._handle_resource_failure(
                            index, attempt,
                            "watchdog" if reason == "watchdog" else "timeout",
                            exc, queue,
                        )
                    else:
                        queue[index] = 0.0  # parked cooperatively
                except MemoryError as exc:
                    self._handle_resource_failure(
                        index, attempt, "memory", exc, queue
                    )
                except Exception as exc:
                    if self._record_failure(index, attempt, "exception", exc):
                        queue[index] = 0.0
            if not inflight or time.monotonic() >= deadline:
                return
            if not progressed:
                time.sleep(self.budget.poll_interval_s)

    def _drain(self, inflight: dict, queue: dict) -> None:
        """Consume already-finished results before abandoning a pool."""
        for index, (result, started, attempt) in list(inflight.items()):
            if not result.ready():
                continue
            del inflight[index]
            try:
                self._record_success(*result.get())
            except Exception as exc:
                if self._record_failure(index, attempt, "exception", exc):
                    queue[index] = 0.0

    # ------------------------------------------------------------------
    # In-process serial path (non-POSIX hosts, workers=1, degraded mode)
    # ------------------------------------------------------------------
    def _run_serial(self, pending: list[int]) -> None:
        from repro.runtime.engine import _merge_stats, _run_range

        self._watch_pids = [os.getpid()]
        queue = list(pending)  # mutable: bisection pushes halves front
        while queue:
            index = queue.pop(0)
            if index in self.done or index not in self.bounds:
                continue
            while True:
                if self._deadline_expired():
                    self.out.cancelled = self.out.cancelled or "deadline"
                    self._fail_remaining([index, *queue], "deadline")
                    return
                attempt = self.attempts[index] + 1
                chunk_ctx = ExecutionContext(
                    self.plan.root.num_tables,
                    predicates=self.predicates,
                    faults=self.faults,
                    cache=self.cache,
                    resources=self.resources,
                )
                started = time.perf_counter()
                try:
                    with span("chunk", index=index,
                              attempt=attempt) as chunk_span:
                        if self.resources is not None:
                            self.resources.check_cancel()
                        chunk_ctx.fire_faults(index, attempt,
                                              allow_exit=False)
                        accumulators = _run_range(
                            self.plan, self.graph, chunk_ctx,
                            self.bounds[index][0], self.bounds[index][1],
                            self.executor,
                        )
                except ChunkCancelled as exc:
                    reason = getattr(exc, "reason", "interrupt")
                    if reason in ("watchdog", "preempt"):
                        # Chunk-level casualty: clear the flag (there is
                        # no pool to recycle in-process) and bisect or
                        # retry; a preempt parks uncharged.
                        self._reset_token()
                        if reason == "preempt" or self._serial_resource_failure(
                            index, attempt, reason, exc, queue
                        ):
                            continue
                        break
                    self.out.cancelled = self.out.cancelled or reason
                    self.attempts[index] = max(self.attempts[index], attempt)
                    self._fail_remaining(
                        [index, *queue],
                        "deadline" if reason == "deadline" else "cancelled",
                    )
                    return
                except MemoryError as exc:
                    if self._serial_resource_failure(index, attempt, "memory",
                                                     exc, queue):
                        continue
                    break
                except Exception as exc:
                    if not self._record_failure(index, attempt, "exception",
                                                exc):
                        break
                    self._backoff_sleep(attempt)
                    continue
                # Kernel-dispatch counts are charged by the caller's
                # global STATS delta (in-process execution, like the
                # engine's non-POSIX fallback); only merge cache counters
                # here to avoid double counting.
                stats: dict[str, int] = {}
                _merge_stats(stats, chunk_ctx.cache_counters())
                # Under tracing the span window is the measurement (one
                # clock, so trace and chunk_seconds cannot disagree).
                self._record_success(
                    index, attempt, accumulators,
                    chunk_span.duration or (time.perf_counter() - started),
                    stats,
                )
                break
