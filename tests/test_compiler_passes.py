"""Unit and differential tests for the middle-end passes."""

from __future__ import annotations

import pytest

from repro.baselines import reference
from repro.compiler.ast_nodes import (
    Accumulate,
    Loop,
    Root,
    ScalarOp,
    SetOp,
    walk,
)
from repro.compiler.build import COUNT_ACC, build_ast
from repro.compiler.interpreter import run_interpreter
from repro.compiler.passes import (
    PassOptions,
    common_subexpression_elimination,
    dead_code_elimination,
    elide_counting_loops,
    loop_invariant_code_motion,
    optimize,
)
from repro.compiler.specs import DecompSpec, DirectSpec
from repro.patterns import catalog
from repro.patterns.decomposition import all_decompositions
from repro.patterns.generation import all_connected_patterns
from repro.patterns.matching_order import connected_orders, extension_orders
from repro.runtime.context import ExecutionContext


def decomp_spec(pattern, which=0, plr_k=0):
    deco = all_decompositions(pattern)[which]
    ext = tuple(
        extension_orders(pattern, deco.cutting_set, s.component)[0]
        for s in deco.subpatterns
    )
    return DecompSpec(deco, deco.cutting_set, ext, plr_k=plr_k)


def run_count(root, graph):
    ctx = ExecutionContext(root.num_tables)
    return run_interpreter(root, graph, ctx)[COUNT_ACC]


class TestElide:
    def test_innermost_counting_loop_removed(self):
        spec = DirectSpec(catalog.triangle(), (0, 1, 2))
        root, _ = build_ast(spec, "count")
        depth_before = _max_loop_depth(root)
        assert elide_counting_loops(root) == 1
        assert _max_loop_depth(root) == depth_before - 1

    def test_negative_constant_scaled(self):
        spec = decomp_spec(catalog.chain(3))
        root, _ = build_ast(spec, "count")
        elide_counting_loops(root)
        # The shrinkage loop `cnt += -1` becomes a size * -1 product.
        muls = [n for n in walk(root)
                if isinstance(n, ScalarOp) and n.op == "mul" and -1 in n.args]
        assert muls

    def test_emit_loops_not_elided(self):
        spec = decomp_spec(catalog.chain(3))
        root, _ = build_ast(spec, "emit")
        before = sum(isinstance(n, Loop) for n in walk(root))
        elide_counting_loops(root)
        after = sum(isinstance(n, Loop) for n in walk(root))
        # Only the M_i counting loops disappear; emit/shrinkage stay.
        assert before - after == 2


class TestLICM:
    def test_hoists_invariant_setop(self):
        spec = DirectSpec(catalog.cycle(4), (0, 1, 2, 3))
        root, _ = build_ast(spec, "count")
        moved = loop_invariant_code_motion(root)
        assert moved >= 0  # may be zero pre-elide; combined below

    def test_accumulator_init_never_hoisted(self):
        spec = decomp_spec(catalog.chain(4))
        root, _ = build_ast(spec, "count")
        loop_invariant_code_motion(root)
        # Every `const 0` accumulator init must stay inside the VC loops.
        accumulated = {n.target for n in walk(root) if isinstance(n, Accumulate)}
        top_level_defs = {
            n.target for n in root.body if isinstance(n, ScalarOp)
        }
        assert not (accumulated - {COUNT_ACC}) & top_level_defs


class TestCSE:
    def test_duplicate_neighbor_loads_unified(self):
        spec = decomp_spec(catalog.chain(4))
        root, _ = build_ast(spec, "count")
        removed = common_subexpression_elimination(root)
        assert removed > 0

    def test_commutative_intersections_unify(self):
        from repro.compiler.ast_nodes import SetOp

        root = Root(
            body=[
                SetOp("s1", "universe", ()),
                SetOp("s2", "universe", ()),
                SetOp("s3", "intersect", ("s1", "s2")),
                SetOp("s4", "intersect", ("s2", "s1")),
                ScalarOp("c1", "size", ("s3",)),
                ScalarOp("c2", "size", ("s4",)),
                Accumulate(COUNT_ACC, "c1"),
                Accumulate(COUNT_ACC, "c2"),
            ],
            accumulators=(COUNT_ACC,),
        )
        removed = common_subexpression_elimination(root)
        assert removed >= 2  # s2 dup of s1, s4 dup of s3, c2 dup of c1


class TestDCE:
    def test_orphans_removed_after_cse(self):
        spec = decomp_spec(catalog.chain(4))
        root, _ = build_ast(spec, "count")
        common_subexpression_elimination(root)
        removed = dead_code_elimination(root)
        assert removed >= 0
        # No unused pure definitions remain.
        used = set()
        from repro.compiler.ast_nodes import node_uses, IfPositive, IfPred

        for node in walk(root):
            used |= node_uses(node)
            if isinstance(node, Loop):
                used.add(node.source)
        for node in walk(root):
            if isinstance(node, (SetOp, ScalarOp)):
                assert node.target in used

    def test_effect_free_loop_removed(self):
        root = Root(
            body=[
                SetOp("s1", "universe", ()),
                Loop("v1", "s1", [SetOp("s2", "neighbors", ("v1",))]),
                Accumulate(COUNT_ACC, 1),
            ],
            accumulators=(COUNT_ACC,),
        )
        dead_code_elimination(root)
        assert not any(isinstance(n, Loop) for n in walk(root))


class TestDifferential:
    """Optimized trees must compute exactly what unoptimized trees do."""

    @pytest.mark.parametrize("size", [3, 4])
    def test_all_passes_preserve_counts(self, size, small_random_graph):
        for pattern in all_connected_patterns(size):
            specs = [DirectSpec(pattern, connected_orders(pattern)[0])]
            if all_decompositions(pattern):
                specs.append(decomp_spec(pattern))
            for spec in specs:
                base_root, _ = build_ast(spec, "count")
                opt_root, _ = build_ast(spec, "count")
                optimize(opt_root)
                assert run_count(base_root, small_random_graph) == run_count(
                    opt_root, small_random_graph
                ), f"{pattern.name} {spec.describe()}"

    def test_each_pass_alone_preserves_counts(self, small_random_graph):
        spec = decomp_spec(catalog.house())
        expected = run_count(build_ast(spec, "count")[0], small_random_graph)
        for options in [
            PassOptions(elide=True, licm=False, cse=False, dce=False),
            PassOptions(elide=False, licm=True, cse=False, dce=False),
            PassOptions(elide=False, licm=False, cse=True, dce=False),
            PassOptions(elide=False, licm=False, cse=False, dce=True),
        ]:
            root, _ = build_ast(spec, "count")
            optimize(root, options)
            assert run_count(root, small_random_graph) == expected

    def test_optimized_tree_is_smaller(self):
        spec = decomp_spec(catalog.gem())
        base_root, _ = build_ast(spec, "count")
        opt_root, _ = build_ast(spec, "count")
        optimize(opt_root)
        assert len(list(walk(opt_root))) < len(list(walk(base_root)))


class TestPLR:
    @pytest.mark.parametrize("pattern", [
        catalog.cycle(4), catalog.cycle(5), catalog.cycle(6),
        catalog.house(), catalog.bowtie(),
    ])
    def test_plr_counts_match(self, pattern, small_random_graph):
        expected = reference.count_embeddings(small_random_graph, pattern)
        for which, deco in enumerate(all_decompositions(pattern)):
            if len(deco.cutting_set) < 2:
                continue
            for plr_k in range(2, len(deco.cutting_set) + 1):
                spec = decomp_spec(pattern, which, plr_k=plr_k)
                root, info = build_ast(spec, "count")
                optimize(root)
                got = run_count(root, small_random_graph) // info.divisor
                assert got == expected, f"{pattern.name} plr_k={plr_k}"
            break  # one decomposition with a multi-vertex cut suffices

    def test_plr_on_asymmetric_prefix_is_noop(self):
        # A prefix with a trivial automorphism group disables PLR.
        pattern = catalog.figure6_pattern()
        deco = next(
            d for d in all_decompositions(pattern)
            if len(d.cutting_set) >= 2
        )
        ext = tuple(
            extension_orders(pattern, deco.cutting_set, s.component)[0]
            for s in deco.subpatterns
        )
        spec_plain = DecompSpec(deco, deco.cutting_set, ext)
        spec_plr = DecompSpec(deco, deco.cutting_set, ext, plr_k=0)
        a, _ = build_ast(spec_plain, "count")
        b, _ = build_ast(spec_plr, "count")
        assert len(list(walk(a))) == len(list(walk(b)))

    def test_plr_expands_compensation_subtrees(self, small_random_graph):
        pattern = catalog.cycle(6)
        deco = next(
            d for d in all_decompositions(pattern) if len(d.cutting_set) == 2
        )
        ext = tuple(
            extension_orders(pattern, deco.cutting_set, s.component)[0]
            for s in deco.subpatterns
        )
        plain, _ = build_ast(DecompSpec(deco, deco.cutting_set, ext), "count")
        rewritten, _ = build_ast(
            DecompSpec(deco, deco.cutting_set, ext, plr_k=2), "count"
        )
        # Before optimization the PLR tree carries |Aut(prefix)| = 2 copies.
        assert len(list(walk(rewritten))) > len(list(walk(plain)))


def _max_loop_depth(root) -> int:
    def depth(block, current):
        best = current
        for node in block:
            if isinstance(node, Loop):
                best = max(best, depth(node.body, current + 1))
            elif hasattr(node, "body"):
                best = max(best, depth(node.body, current))
        return best

    return depth(root.body, 0)
