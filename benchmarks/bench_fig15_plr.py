"""Figure 15: speedups from pattern-aware loop rewriting (PLR).

For each size-5 pattern except the 5-clique (which has no cutting set),
the paper compiles the counting application with and without PLR and runs
on Patents.  Paper shape: up to 6.5x, with more than half of the patterns
improving.

Here each pattern's best *decomposition* plan with a symmetric cutting-set
prefix is executed with ``plr_k`` forced on versus off; patterns whose
search space offers no symmetric prefix report 1.0x (PLR inapplicable),
as in the paper's flat bars.
"""

from __future__ import annotations

from repro.bench import Table, profile_for, time_call_preemptive
from repro.compiler import SearchOptions, compile_spec, enumerate_candidates
from repro.compiler.specs import DecompSpec
from repro.costmodel import get_model
from repro.graph import datasets
from repro.patterns.generation import all_connected_patterns
from repro.runtime.engine import execute_plan

TIMEOUT = 30.0


def best_plr_pair(pattern, profile, model):
    """(spec with plr, same spec with plr_k=0), or None."""
    candidates = [
        c for c in enumerate_candidates(
            pattern, profile, model,
            options=SearchOptions(enable_direct=False),
        )
        if isinstance(c.spec, DecompSpec) and c.spec.plr_k > 0
    ]
    if not candidates:
        return None
    best = min(candidates, key=lambda c: c.cost)
    spec = best.spec
    baseline = DecompSpec(
        decomposition=spec.decomposition,
        vc_order=spec.vc_order,
        ext_orders=spec.ext_orders,
        plr_k=0,
        include_shrinkages=spec.include_shrinkages,
    )
    return spec, baseline


def run_experiment():
    graph = datasets.load("pt")
    profile = profile_for(graph)
    model = get_model("approx_mining")
    table = Table(
        "Figure 15: PLR speedup per size-5 pattern on patents "
        "(paper: up to 6.5x, >half improve)",
        ["pattern", "plr", "no-plr", "speedup"],
    )
    speedups = []
    patterns = [p for p in all_connected_patterns(5) if not p.is_clique]
    for pattern in patterns:
        pair = best_plr_pair(pattern, profile, model)
        if pair is None:
            table.add_row(pattern.name, "-", "-", "n/a (no symmetric prefix)")
            continue
        with_plr, without_plr = pair

        def run(spec):
            plan = compile_spec(spec)
            return execute_plan(plan, graph).raw_count

        t_plr = time_call_preemptive(lambda s=with_plr: run(s), TIMEOUT)
        t_base = time_call_preemptive(lambda s=without_plr: run(s), TIMEOUT)
        if t_plr.ok and t_base.ok:
            assert t_plr.value == t_base.value, pattern.name
            ratio = t_base.seconds / t_plr.seconds
            speedups.append(ratio)
            table.add_row(pattern.name, t_plr, t_base, f"{ratio:.2f}x")
        else:
            table.add_row(pattern.name, t_plr, t_base, "-")
    if speedups:
        improved = sum(1 for s in speedups if s > 1.02)
        table.add_note(
            f"{improved}/{len(speedups)} measured patterns improved; "
            f"max speedup {max(speedups):.2f}x"
        )
    return table, speedups


def test_fig15_plr(report, run_once):
    table, speedups = run_once(run_experiment)
    report(table)
    assert speedups, "PLR must be measurable on some size-5 patterns"
    # Shape: PLR never catastrophically hurts when chosen on symmetric
    # prefixes, and helps at least some patterns.
    assert max(speedups) > 1.0
