"""ESCAPE re-implementation [Pinar, Seshadhri & Vishal, WWW'17].

ESCAPE is the expert-tailored, single-threaded pattern-decomposition
counter the paper uses as its native-algorithm yardstick (Table 5).  It
computes motif censuses from closed-form combinations of cheap statistics
instead of enumerating embeddings:

* size 3 and 4 — the exact classical formulas over degrees, per-edge
  triangle counts and co-degrees (all array arithmetic here);
* size 5 — the original paper derives dozens of pattern-specific
  formulas; this reproduction stands in with its *other* key ingredient,
  hand-pinned decompositions executed without any search (see DESIGN.md),
  which preserves ESCAPE's role: a tuned single-thread decomposition
  counter with zero compile/search overhead at run time.

All censuses are returned vertex-induced, converted from the non-induced
quantities through the library's conversion matrix — the same two-step
structure as the original (ESCAPE counts non-induced first, too).
"""

from __future__ import annotations

import numpy as np

from repro.graph import vertex_set as vs
from repro.graph.csr import CSRGraph
from repro.patterns.catalog import chain, clique, cycle, star, tailed_triangle, diamond
from repro.patterns.conversion import vertex_induced_from_edge_induced
from repro.patterns.generation import all_connected_patterns
from repro.patterns.isomorphism import canonical_code
from repro.patterns.pattern import Pattern

__all__ = ["Escape"]


class Escape:
    name = "escape"

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self._stats: dict | None = None

    # ------------------------------------------------------------------
    # Shared statistics
    # ------------------------------------------------------------------
    def _statistics(self) -> dict:
        """Degrees, per-edge triangle counts, wedge co-degrees."""
        if self._stats is not None:
            return self._stats
        graph = self.graph
        degrees = graph.degrees.astype(np.int64)
        edge_list = []
        edge_triangles = []
        triangle_total = 0
        triangle_per_vertex = np.zeros(graph.num_vertices, dtype=np.int64)
        for u in range(graph.num_vertices):
            nbrs_u = graph.neighbors(u)
            for v in nbrs_u.tolist():
                if u < v:
                    t = vs.intersect_size(nbrs_u, graph.neighbors(v))
                    edge_list.append((u, v))
                    edge_triangles.append(t)
                    triangle_total += t
        triangle_total //= 3
        # Triangles per vertex: each triangle contributes to 3 vertices;
        # per-vertex count = sum of t_e over incident edges / 2.
        incident = np.zeros(graph.num_vertices, dtype=np.int64)
        for (u, v), t in zip(edge_list, edge_triangles):
            incident[u] += t
            incident[v] += t
        triangle_per_vertex = incident // 2
        self._stats = {
            "degrees": degrees,
            "edges": edge_list,
            "edge_triangles": np.asarray(edge_triangles, dtype=np.int64),
            "triangles": triangle_total,
            "triangle_per_vertex": triangle_per_vertex,
        }
        return self._stats

    # ------------------------------------------------------------------
    # Non-induced (edge-induced) counts via closed forms
    # ------------------------------------------------------------------
    def _edge_induced_size3(self) -> dict[Pattern, int]:
        stats = self._statistics()
        d = stats["degrees"]
        wedges = int((d * (d - 1) // 2).sum())
        return {
            chain(3): wedges,
            clique(3): int(stats["triangles"]),
        }

    def _edge_induced_size4(self) -> dict[Pattern, int]:
        stats = self._statistics()
        graph = self.graph
        d = stats["degrees"]
        edges = stats["edges"]
        t_e = stats["edge_triangles"]

        three_star = int((d * (d - 1) * (d - 2) // 6).sum())
        du = np.asarray([d[u] for u, _ in edges])
        dv = np.asarray([d[v] for _, v in edges])
        three_path = int(((du - 1) * (dv - 1)).sum() - t_e.sum())
        # Tails: every (triangle, corner) pair contributes (deg(corner) - 2)
        # pendant choices.
        tpv = stats["triangle_per_vertex"]
        tailed = int((tpv * (d - 2)).sum())
        diamonds = int((t_e * (t_e - 1) // 2).sum())
        four_cycle = self._four_cycles()
        four_clique = self._four_cliques()
        return {
            star(3): three_star,
            chain(4): three_path,
            tailed_triangle(): tailed,
            cycle(4): four_cycle,
            diamond(): diamonds,
            clique(4): four_clique,
        }

    def _four_cycles(self) -> int:
        """Σ over vertex pairs of C(codegree, 2), halved (two diagonals)."""
        graph = self.graph
        codegree: dict[tuple[int, int], int] = {}
        for v in range(graph.num_vertices):
            nbrs = graph.neighbors(v).tolist()
            for i in range(len(nbrs)):
                for j in range(i + 1, len(nbrs)):
                    key = (nbrs[i], nbrs[j])
                    codegree[key] = codegree.get(key, 0) + 1
        total = sum(w * (w - 1) // 2 for w in codegree.values())
        return total // 2

    def _four_cliques(self) -> int:
        graph = self.graph
        total = 0
        for u, v in self._statistics()["edges"]:
            common = vs.intersect(graph.neighbors(u), graph.neighbors(v))
            common_list = common.tolist()
            for i in range(len(common_list)):
                nbrs_i = graph.neighbors(common_list[i])
                for j in range(i + 1, len(common_list)):
                    if vs.contains(nbrs_i, common_list[j]):
                        total += 1
        return total // 6

    # ------------------------------------------------------------------
    # Size 5: pinned decompositions, no search (see module docstring)
    # ------------------------------------------------------------------
    def _edge_induced_size5(self) -> dict[Pattern, int]:
        from repro.compiler.pipeline import compile_spec
        from repro.compiler.specs import DecompSpec, DirectSpec
        from repro.patterns.decomposition import all_decompositions
        from repro.patterns.matching_order import (
            connected_orders,
            extension_orders,
            greedy_extension_order,
        )
        from repro.patterns.symmetry import symmetry_breaking_restrictions
        from repro.runtime.engine import execute_plan

        counts: dict[Pattern, int] = {}
        for pattern in all_connected_patterns(5):
            decompositions = all_decompositions(pattern)
            if decompositions:
                # Pinned choice: the smallest cutting set (ESCAPE cuts at
                # articulation-like sets), greedy extension orders.
                deco = min(decompositions, key=lambda d: len(d.cutting_set))
                ext = tuple(
                    greedy_extension_order(
                        pattern, deco.cutting_set, sub.component
                    )
                    for sub in deco.subpatterns
                )
                spec = DecompSpec(deco, deco.cutting_set, ext)
            else:
                order = connected_orders(pattern)[0]
                spec = DirectSpec(
                    pattern, order,
                    restrictions=tuple(symmetry_breaking_restrictions(pattern)),
                )
            plan = compile_spec(spec, "count")
            counts[pattern] = execute_plan(plan, self.graph).embedding_count
        return counts

    # ------------------------------------------------------------------
    # Miner interface
    # ------------------------------------------------------------------
    def motif_census(self, k: int) -> dict[Pattern, int]:
        if k == 3:
            edge_induced = self._edge_induced_size3()
        elif k == 4:
            edge_induced = self._edge_induced_size4()
        elif k == 5:
            edge_induced = self._edge_induced_size5()
        else:
            raise ValueError("ESCAPE counts patterns up to 5 vertices")
        by_code = {canonical_code(p): c for p, c in edge_induced.items()}
        aligned = {
            pattern: by_code[canonical_code(pattern)]
            for pattern in all_connected_patterns(k)
        }
        return vertex_induced_from_edge_induced(k, aligned)

    def count(self, pattern: Pattern, induced: bool = False) -> int:
        census_ei = {
            3: self._edge_induced_size3,
            4: self._edge_induced_size4,
            5: self._edge_induced_size5,
        }
        if pattern.n not in census_ei:
            raise ValueError("ESCAPE counts patterns of size 3-5 only")
        edge_induced = census_ei[pattern.n]()
        by_code = {canonical_code(p): c for p, c in edge_induced.items()}
        if not induced:
            return by_code[canonical_code(pattern.without_labels())]
        return self.motif_census(pattern.n)[
            _canonical_lookup(pattern)
        ]

    def domains(self, pattern: Pattern) -> dict[int, set[int]]:
        raise NotImplementedError(
            "ESCAPE is a counting-only implementation (no FSM support)"
        )


def _canonical_lookup(pattern: Pattern) -> Pattern:
    target = canonical_code(pattern.without_labels())
    for candidate in all_connected_patterns(pattern.n):
        if canonical_code(candidate) == target:
            return candidate
    raise KeyError(pattern)
