"""Cross-validation of every baseline system against the oracle."""

from __future__ import annotations

import pytest

from repro.apps import DecoMineMiner
from repro.baselines import (
    Arabesque,
    AutoMineInHouse,
    Escape,
    Fractal,
    GraphPi,
    Pangolin,
    Peregrine,
    RStream,
)
from repro.baselines import reference
from repro.exceptions import BudgetExceededError
from repro.graph.generators import erdos_renyi, planted_communities
from repro.patterns import catalog
from repro.patterns.generation import all_connected_patterns
from repro.patterns.isomorphism import canonical_code
from repro.patterns.pattern import Pattern

TEST_PATTERNS = [
    catalog.triangle(), catalog.chain(4), catalog.cycle(4),
    catalog.tailed_triangle(), catalog.star(3),
]


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(20, 0.28, seed=17)


@pytest.fixture(scope="module")
def labeled():
    return planted_communities(
        n=40, num_communities=3, p_in=0.35, p_out=0.04, num_labels=3, seed=29,
    )


def all_systems(graph):
    return [
        AutoMineInHouse(graph),
        Peregrine(graph),
        GraphPi(graph),
        GraphPi(graph, count_optimization=False),
        Arabesque(graph),
        RStream(graph),
        Fractal(graph),
    ]


class TestEdgeInducedCounts:
    @pytest.mark.parametrize("pattern", TEST_PATTERNS,
                             ids=lambda p: p.name)
    def test_all_systems_agree(self, graph, pattern):
        expected = reference.count_embeddings(graph, pattern)
        for system in all_systems(graph):
            assert system.count(pattern) == expected, system.name


class TestVertexInducedCounts:
    @pytest.mark.parametrize("pattern", TEST_PATTERNS,
                             ids=lambda p: p.name)
    def test_all_systems_agree(self, graph, pattern):
        expected = reference.count_embeddings(graph, pattern, induced=True)
        systems = all_systems(graph) + [Pangolin(graph)]
        for system in systems:
            assert system.count(pattern, induced=True) == expected, system.name


class TestMotifCensus:
    @pytest.mark.parametrize("k", [3, 4])
    def test_census_agreement(self, graph, k):
        expected = {
            canonical_code(p): reference.count_embeddings(graph, p, induced=True)
            for p in all_connected_patterns(k)
        }
        for system in (DecoMineMiner.for_graph(graph), AutoMineInHouse(graph),
                       Arabesque(graph), Fractal(graph), Escape(graph)):
            census = system.motif_census(k)
            got = {canonical_code(p): c for p, c in census.items()}
            assert got == expected, system.name


class TestDomains:
    def test_domains_agree_across_systems(self, labeled):
        pattern = Pattern(3, [(0, 1), (1, 2)], labels=[0, 1, 0])
        expected = {v: set() for v in range(3)}
        for a in reference._assignments(labeled, pattern, False):
            for v, g in enumerate(a):
                expected[v].add(g)
        for system in (DecoMineMiner.for_graph(labeled),
                       AutoMineInHouse(labeled), Peregrine(labeled),
                       Arabesque(labeled), Fractal(labeled)):
            assert system.domains(pattern) == expected, system.name

    def test_single_vertex_domains(self, labeled):
        pattern = Pattern(1, [], labels=[0])
        domains = Peregrine(labeled).domains(pattern)
        assert domains[0] == set(labeled.vertices_with_label(0).tolist())


class TestBudgets:
    def test_arabesque_crashes_over_budget(self, graph):
        system = Arabesque(graph, max_stored=50)
        with pytest.raises(BudgetExceededError):
            system.count(catalog.chain(4))

    def test_rstream_crashes_over_budget(self, graph):
        system = RStream(graph, max_rows=50)
        with pytest.raises(BudgetExceededError):
            system.count(catalog.chain(4))

    def test_pangolin_crashes_over_budget(self, graph):
        system = Pangolin(graph, max_stored=20)
        with pytest.raises(BudgetExceededError):
            system.count(catalog.clique(4))

    def test_fractal_never_stores_frontiers(self, graph):
        # DFS: no budget parameter at all; large patterns just take time.
        assert Fractal(graph).count(catalog.chain(5)) == \
            reference.count_embeddings(graph, catalog.chain(5))


class TestEscape:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_census_exact(self, graph, k):
        census = Escape(graph).motif_census(k)
        for pattern, value in census.items():
            assert value == reference.count_embeddings(
                graph, pattern, induced=True
            ), pattern.name

    def test_single_pattern_counts(self, graph):
        escape = Escape(graph)
        assert escape.count(catalog.diamond()) == \
            reference.count_embeddings(graph, catalog.diamond())
        assert escape.count(catalog.cycle(4), induced=True) == \
            reference.count_embeddings(graph, catalog.cycle(4), induced=True)

    def test_out_of_scope_pattern_rejected(self, graph):
        with pytest.raises(ValueError):
            Escape(graph).count(catalog.cycle(6))
        with pytest.raises(ValueError):
            Escape(graph).motif_census(6)

    def test_no_fsm_support(self, graph):
        with pytest.raises(NotImplementedError):
            Escape(graph).domains(catalog.chain(3))


class TestConstrainedCounting:
    def test_peregrine_filter_matches_decomine(self, labeled):
        from repro.api import DecoMine, labels_distinct, labels_equal

        pattern = catalog.figure6_pattern()
        session = DecoMine(labeled)
        constraints = [
            labels_distinct(labeled, (0, 1, 2)),
            labels_equal(labeled, (1, 3, 4)),
        ]
        decomine_count = session.count_with_constraints(pattern, constraints)
        peregrine_count = Peregrine(labeled).constrained_count(
            pattern, constraints
        )
        assert decomine_count == peregrine_count
