"""Runtime: execution engine, contexts, hash tables, partial embeddings."""

from repro.runtime.context import ExecutionContext
from repro.runtime.engine import ExecutionResult, chunk_ranges, execute_plan
from repro.runtime.hashtable import NaiveTable, ShrinkageTable
from repro.runtime.partial_embedding import PartialEmbedding, materialize

__all__ = [
    "ExecutionContext",
    "ExecutionResult",
    "chunk_ranges",
    "execute_plan",
    "NaiveTable",
    "ShrinkageTable",
    "PartialEmbedding",
    "materialize",
]
