#!/usr/bin/env python3
"""Fault-injection smoke run: exercise the execution supervisor end-to-end.

Runs a handful of catalog patterns on a small deterministic graph three
ways — fault-free, under a seeded fault schedule (chunk exceptions,
worker deaths, delays), and killed-then-resumed through a checkpoint —
and checks every run reproduces the fault-free embedding count exactly.
Designed as a CI gate::

    PYTHONPATH=src python scripts/fault_smoke.py --json fault_smoke.json

Exits nonzero on any count mismatch or unrecovered failure; the JSON
report records the retry/restart/resume counters so a CI artifact shows
how much recovery actually happened.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.baselines import reference
from repro.compiler.pipeline import compile_pattern
from repro.costmodel import profile_graph
from repro.graph.generators import erdos_renyi
from repro.patterns import catalog
from repro.runtime.context import ExecutionContext
from repro.runtime.engine import EngineOptions, execute_plan
from repro.runtime.faults import Fault, FaultPlan
from repro.runtime.supervisor import RunBudget, RunPolicy

PATTERNS = {
    "house": catalog.house,
    "cycle4": lambda: catalog.cycle(4),
    "clique4": lambda: catalog.clique(4),
    "chain5": lambda: catalog.chain(5),
}

WORKERS = 2
CHUNKS_PER_WORKER = 4
OPTIONS = EngineOptions(workers=WORKERS, chunks_per_worker=CHUNKS_PER_WORKER)


def run_smoke(seed: int) -> dict:
    graph = erdos_renyi(16, 0.35, seed=3)
    profile = profile_graph(graph, max_pattern_size=3, trials=60)
    num_chunks = WORKERS * CHUNKS_PER_WORKER
    report: dict = {"seed": seed, "patterns": {}, "ok": True}

    for index, (name, build) in enumerate(sorted(PATTERNS.items())):
        pattern = build()
        plan = compile_pattern(pattern, profile)
        expected = reference.count_embeddings(graph, pattern)
        faults = FaultPlan.seeded(
            seed + index, num_chunks,
            exception_rate=0.4, death_rate=0.15, delay_rate=0.3,
            delay_s=0.01,
        )
        ctx = ExecutionContext(plan.root.num_tables, faults=faults)
        result = execute_plan(plan, graph, ctx=ctx, options=OPTIONS)
        entry = {
            "expected": expected,
            "count": result.embedding_count if result.ok else None,
            "injected_faults": len(faults.faults),
            "retries": result.metrics.retries,
            "pool_restarts": result.metrics.pool_restarts,
            "failures": [f.describe() for f in result.failures],
            "ok": result.ok and result.embedding_count == expected,
        }
        report["patterns"][name] = entry
        report["ok"] = report["ok"] and entry["ok"]

    # Killed-then-resumed checkpoint round: a permanently poisoned chunk
    # makes the first run fail; clearing the poison and rerunning with
    # the same checkpoint must replay the finished chunks and match.
    pattern = catalog.house()
    plan = compile_pattern(pattern, profile)
    expected = reference.count_embeddings(graph, pattern)
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "smoke.jsonl")
        poisoned = ExecutionContext(
            plan.root.num_tables,
            faults=FaultPlan((Fault("raise", 2, attempts=None),)),
        )
        first = execute_plan(
            plan, graph, ctx=poisoned, options=OPTIONS,
            policy=RunPolicy(
                budget=RunBudget(max_chunk_retries=1, backoff_s=0.001),
                checkpoint=path,
            ),
        )
        second = execute_plan(
            plan, graph, options=OPTIONS,
            policy=RunPolicy(checkpoint=path),
        )
    resumed_ok = (
        not first.ok
        and second.ok
        and second.embedding_count == expected
        and second.metrics.resumed_chunks > 0
    )
    report["checkpoint_resume"] = {
        "first_failures": [f.describe() for f in first.failures],
        "resumed_chunks": second.metrics.resumed_chunks,
        "count": second.embedding_count if second.ok else None,
        "expected": expected,
        "ok": resumed_ok,
    }
    report["ok"] = report["ok"] and resumed_ok
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2026,
                        help="base seed for the fault schedules")
    parser.add_argument("--json", metavar="FILE",
                        help="write the counter report as JSON")
    args = parser.parse_args(argv)

    report = run_smoke(args.seed)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.json:
        Path(args.json).write_text(text + "\n", encoding="utf-8")
    print(text)
    if not report["ok"]:
        print("fault smoke FAILED: counts diverged or recovery failed",
              file=sys.stderr)
        return 1
    total_retries = sum(
        entry["retries"] for entry in report["patterns"].values()
    )
    total_restarts = sum(
        entry["pool_restarts"] for entry in report["patterns"].values()
    )
    print(
        f"fault smoke OK: {len(report['patterns'])} patterns exact under "
        f"faults ({total_retries} retries, {total_restarts} pool "
        f"restarts), checkpoint resume exact "
        f"({report['checkpoint_resume']['resumed_chunks']} chunks "
        f"replayed)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
