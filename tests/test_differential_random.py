"""Randomized property-based differential harness.

The curated 18-pattern suite (:mod:`tests.test_differential_engines`)
locks the executors against hand-picked shapes; this harness locks them
against the shapes nobody picked.  Every case draws a random connected
pattern (3-6 vertices: random spanning tree plus random extra edges)
and a random graph (Erdős–Rényi or power-law, 50-300 vertices), compiles
it through the full pipeline per orientation mode, executes it on all
three executors, and requires exact agreement with the brute-force
reference enumerator.

Determinism contract: every case is a pure function of its integer seed.
A failure's assertion message carries the seed plus the drawn pattern
and graph, so any red case reproduces with one line::

    pytest tests/test_differential_random.py -k "case 1234" # or:
    python -c "from tests.test_differential_random import run_case; run_case(1234)"

Case volume: ``NUM_CASES`` seeds x len(EXECUTORS) executors x the
per-seed orientation draw — 240 (pattern, graph) evaluations per
executor by default, >200 as the acceptance floor demands.  Set
``REPRO_RANDOM_CASES`` to widen the sweep (CI keeps the default).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.baselines import reference
from repro.compiler.pipeline import compile_pattern
from repro.costmodel import profile_graph
from repro.graph.generators import erdos_renyi, power_law
from repro.graph.transform import ORIENTATIONS
from repro.patterns.pattern import Pattern
from repro.runtime.engine import EXECUTORS, EngineOptions, execute_plan

NUM_CASES = int(os.environ.get("REPRO_RANDOM_CASES", "240"))

#: Distinct random graphs are expensive (profile + brute-force reference
#: per pattern); seeds share graphs in blocks so the sweep stays fast
#: while still crossing every pattern with several graph regimes.
SEEDS_PER_GRAPH = 12


def random_pattern(rng: random.Random) -> Pattern:
    """A uniform-ish random connected pattern on 3-6 vertices.

    A random spanning tree (each vertex attaches to a uniformly chosen
    earlier vertex) guarantees connectivity; every remaining vertex pair
    then gets an edge with probability 0.4, spanning the sparse-to-dense
    range the executors' set-op mixes differ most on.
    """
    k = rng.randint(3, 6)
    edges = {(rng.randrange(v), v) for v in range(1, k)}
    for u in range(k):
        for v in range(u + 1, k):
            if (u, v) not in edges and rng.random() < 0.4:
                edges.add((u, v))
    return Pattern(k, sorted(edges), name=f"random-{k}v-{len(edges)}e")


def random_graph(rng: random.Random):
    """A random data graph: Erdős–Rényi or power-law, 50-300 vertices.

    Degrees are kept moderate (mean 3-7, power-law exponents >= 2.3) so
    the brute-force reference stays tractable: hub-heavy exponents near
    1.8 put the hom mass on a few high-degree vertices and turn the
    enumeration into minutes per case without adding executor coverage
    (the curated suite already has a heavy-tailed graph).
    """
    n = rng.randint(50, 300)
    seed = rng.randrange(2**31)
    if rng.random() < 0.5:
        # Average degree 3-7, expressed as an edge probability.
        p = rng.uniform(3.0, 7.0) / (n - 1)
        return erdos_renyi(n, p, seed=seed)
    return power_law(
        n,
        avg_degree=rng.uniform(3.0, 6.0),
        exponent=rng.uniform(2.3, 3.0),
        seed=seed,
    )


#: Cap on a case's estimated homomorphism count: the brute-force
#: reference enumerates every injective hom, so an unlucky sparse
#: 6-vertex pattern on a dense 300-vertex graph would take minutes.
#: Patterns over budget are redrawn (deterministically — same rng
#: stream), which skews large-k draws toward denser patterns and small
#: graphs without losing the 3-6 vertex coverage.
WORK_BUDGET = 200_000


def _hom_estimate(pattern: Pattern, graph) -> float:
    """First-order expected injective-hom count of ``pattern`` in
    ``graph``: a spanning-tree walk estimate ``n * d * d2^(k-2)`` (d2 =
    mean neighbor degree, the right moment under degree skew) discounted
    per non-tree edge.  The discount uses only half the random-edge
    probability's log-weight — on skewed graphs the hom mass sits on
    hub-adjacent vertex tuples, where extra edges close far more often
    than ``d/n`` suggests, so the full discount badly underestimates."""
    import numpy as np

    degrees = np.diff(graph.indptr)
    total = int(degrees.sum())
    if total == 0:
        return 0.0
    n = graph.num_vertices
    d = total / n
    d2 = float((degrees.astype(float) ** 2).sum()) / total
    k = pattern.num_vertices
    extra = pattern.num_edges - (k - 1)
    return n * d * d2 ** (k - 2) * (d / n) ** (extra / 2)


def draw_pattern(rng: random.Random, graph) -> Pattern:
    """A random connected pattern whose reference enumeration fits the
    work budget on ``graph`` (redraws from the same stream, so the
    result is still a pure function of the seed)."""
    for _ in range(32):
        pattern = random_pattern(rng)
        if _hom_estimate(pattern, graph) <= WORK_BUDGET:
            return pattern
    return Pattern(3, [(0, 1), (1, 2), (0, 2)], name="fallback-triangle")


_GRAPH_CACHE: dict[int, tuple] = {}


def _graph_for(seed: int):
    """Graph + cost profile for a seed's block (cached per block)."""
    block = seed // SEEDS_PER_GRAPH
    if block not in _GRAPH_CACHE:
        rng = random.Random(f"graph-{block}")
        graph = random_graph(rng)
        profile = profile_graph(graph, max_pattern_size=3, trials=40)
        _GRAPH_CACHE[block] = (graph, profile)
    return _GRAPH_CACHE[block]


def run_case(seed: int) -> None:
    """Evaluate one seed: all executors x one drawn orientation."""
    rng = random.Random(f"pattern-{seed}")
    graph, profile = _graph_for(seed)
    pattern = draw_pattern(rng, graph)
    orientation = ORIENTATIONS[seed % len(ORIENTATIONS)]
    expected = reference.count_embeddings(graph, pattern)
    plan = compile_pattern(pattern, profile, orientation=orientation)
    where = (
        f"case {seed}: pattern={pattern.name} edges={pattern.edges()} "
        f"graph={graph} orientation={orientation}"
    )
    for executor in EXECUTORS:
        options = EngineOptions(executor=executor, orientation=orientation)
        result = execute_plan(plan, graph, options=options)
        assert result.embedding_count == expected, (
            f"{where} executor={executor}: "
            f"got {result.embedding_count}, reference {expected}"
        )


@pytest.mark.parametrize("seed", range(NUM_CASES), ids=lambda s: f"case {s}")
def test_random_differential(seed: int) -> None:
    run_case(seed)


def test_no_shared_segments_leaked() -> None:
    """The sweep above (and anything else in the session) must leave no
    shared-memory segments registered to this process."""
    from repro.graph import shared

    assert shared.active_segments() == []


def test_pattern_generator_is_deterministic() -> None:
    a = random_pattern(random.Random("pattern-7"))
    b = random_pattern(random.Random("pattern-7"))
    assert a.edges() == b.edges() and a.num_vertices == b.num_vertices


def test_pattern_generator_yields_connected() -> None:
    for seed in range(200):
        pattern = random_pattern(random.Random(f"pattern-{seed}"))
        assert pattern.is_connected, f"seed {seed} drew a disconnected pattern"
        assert 3 <= pattern.num_vertices <= 6
