"""Tree-walking reference executor for the DecoMine AST.

The production path generates Python source (:mod:`repro.compiler.codegen`);
this interpreter executes the same tree directly and exists to (a) validate
codegen in differential tests and (b) serve as the `executor="interpreter"`
ablation.  Semantics of each node type are documented in
:mod:`repro.compiler.ast_nodes`.
"""

from __future__ import annotations

from typing import Any

from repro.compiler.ast_nodes import (
    Accumulate,
    EmitPartial,
    HashAdd,
    HashClear,
    HashGet,
    IfPositive,
    IfPred,
    Loop,
    Node,
    Root,
    ScalarOp,
    SetOp,
)
from repro.graph import vertex_set as vs
from repro.graph.csr import CSRGraph
from repro.runtime.context import ExecutionContext

__all__ = ["run_interpreter"]


def run_interpreter(
    root: Root,
    graph: CSRGraph,
    ctx: ExecutionContext,
    start: int | None = None,
    stop: int | None = None,
) -> dict[str, int]:
    """Execute the tree; returns this invocation's accumulator values.

    ``start``/``stop`` restrict the outermost loop to a slice of its
    source set — the chunking hook the parallel engine uses.
    """
    env: dict[str, Any] = {name: 0 for name in root.accumulators}
    _Interp(graph, ctx, env, start, stop).block(root.body, outer=True)
    return {name: env[name] for name in root.accumulators}


class _Interp:
    def __init__(self, graph, ctx, env, start, stop):
        self.graph = graph
        self.ctx = ctx
        self.env = env
        self.start = start
        self.stop = stop

    def block(self, nodes: list[Node], outer: bool = False) -> None:
        for node in nodes:
            self.execute(node, outer)

    def execute(self, node: Node, outer: bool = False) -> None:
        env = self.env
        if isinstance(node, SetOp):
            env[node.target] = self.set_op(node)
        elif isinstance(node, ScalarOp):
            env[node.target] = self.scalar_op(node)
        elif isinstance(node, Loop):
            source = env[node.source]
            body = node.body
            var = node.var
            if outer:
                lo = self.start if self.start is not None else 0
                hi = self.stop if self.stop is not None else len(source)
                source = source[lo:hi]
                # Cooperative-cancellation poll per outer-loop vertex,
                # mirroring the codegen executor's emitted `_poll()`.
                poll = self.ctx.poll_cancel
                for value in source.tolist():
                    poll()
                    env[var] = value
                    self.block(body)
                return
            for value in source.tolist():
                env[var] = value
                self.block(body)
        elif isinstance(node, Accumulate):
            value = env[node.value] if isinstance(node.value, str) else node.value
            env[node.target] += value
        elif isinstance(node, IfPositive):
            if env[node.scalar] > 0:
                self.block(node.body)
        elif isinstance(node, IfPred):
            args = tuple(env[v] for v in node.vertices)
            if self.ctx.predicates[node.pred](*args):
                self.block(node.body)
        elif isinstance(node, HashClear):
            self.ctx.tables[node.table].clear()
        elif isinstance(node, HashAdd):
            key = tuple(env[v] for v in node.key)
            self.ctx.tables[node.table].add(key)
        elif isinstance(node, HashGet):
            key = tuple(env[v] for v in node.key)
            env[node.target] = self.ctx.tables[node.table].get(key)
        elif isinstance(node, EmitPartial):
            count = env[node.count] if isinstance(node.count, str) else node.count
            vertices = tuple(env[v] for v in node.vertices)
            self.ctx.emit(node.index, vertices, count)
        else:
            raise TypeError(f"cannot interpret {type(node).__name__}")

    def set_op(self, node: SetOp):
        env = self.env
        graph = self.graph
        op = node.op
        args = node.args
        if op == "universe":
            return graph.vertices()
        if op == "neighbors":
            return graph.neighbors(env[args[0]])
        if op == "oriented":
            return graph.out_neighbors(env[args[0]])
        if op == "intersect":
            return self.ctx.intersect(env[args[0]], env[args[1]])
        if op == "subtract":
            return self.ctx.subtract(env[args[0]], env[args[1]])
        if op == "copy":
            return env[args[0]]
        if op == "trim_below":
            return vs.trim_below(env[args[0]], env[args[1]])
        if op == "trim_above":
            return vs.trim_above(env[args[0]], env[args[1]])
        if op == "intersect_upto":
            return vs.intersect_upto(env[args[0]], env[args[1]], env[args[2]])
        if op == "intersect_from":
            return vs.intersect_from(env[args[0]], env[args[1]], env[args[2]])
        if op == "subtract_upto":
            return vs.subtract_upto(env[args[0]], env[args[1]], env[args[2]])
        if op == "subtract_from":
            return vs.subtract_from(env[args[0]], env[args[1]], env[args[2]])
        if op == "exclude":
            values = tuple(env[a] for a in args[1:])
            return vs.exclude(env[args[0]], *values)
        if op == "filter_label":
            return graph.filter_label(env[args[0]], args[1])
        if op == "label_universe":
            return graph.vertices_with_label(args[0])
        raise ValueError(f"unknown set op {op!r}")

    def scalar_op(self, node: ScalarOp):
        env = self.env

        def value(arg):
            return env[arg] if isinstance(arg, str) else arg

        op = node.op
        args = node.args
        if op == "const":
            return args[0]
        if op == "size":
            return len(env[args[0]])
        if op == "mul":
            return value(args[0]) * value(args[1])
        if op == "add":
            return value(args[0]) + value(args[1])
        if op == "sub":
            return value(args[0]) - value(args[1])
        if op == "floordiv":
            return value(args[0]) // value(args[1])
        raise ValueError(f"unknown scalar op {op!r}")
