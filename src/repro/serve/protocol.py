"""JSON-lines wire protocol for the ``repro serve`` daemon.

Every message is one JSON object on one ``\\n``-terminated line over a
``SOCK_STREAM`` Unix socket.  Requests carry an ``op``:

* ``{"op": "submit", "request": {...MiningRequest wire...}}`` →
  ``{"op": "response", "response": {...MiningResponse wire...}}``
* ``{"op": "ping"}`` → ``{"op": "pong", "stats": {...}}``
* ``{"op": "stats"}`` → ``{"op": "stats", "stats": {...}, "metrics": {...}}``
* ``{"op": "shutdown"}`` → ``{"op": "bye"}`` and the daemon drains and
  exits.

Malformed input produces ``{"op": "error", "error": "..."}`` and the
connection stays usable.  Lines are capped at :data:`MAX_LINE_BYTES`
(oversized lines error out rather than buffering without bound).
"""

from __future__ import annotations

import json
import socket

from repro.exceptions import ReproError

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "read_message",
    "send_message",
]

#: Upper bound for one protocol line; far above any legitimate message
#: (patterns are tiny), small enough to bound a hostile client.
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ReproError):
    """A malformed or oversized protocol message."""


def send_message(sock: socket.socket, message: dict) -> None:
    """Serialize one message and write it as a single line."""
    data = json.dumps(message, separators=(",", ":")).encode() + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(data)} bytes exceeds line cap")
    sock.sendall(data)


def read_message(reader) -> dict | None:
    """Read one message from a buffered binary reader; None on EOF."""
    line = reader.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("protocol line exceeds the size cap")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    return message
