"""Brute-force reference enumerator.

The correctness oracle for the whole repository: a direct backtracking
subgraph matcher with no compilation, no decomposition and no cleverness.
Every sophisticated counter in the library is property-tested against this
module on random graphs.

Semantics:

* ``count_embeddings(..., induced=False)`` — edge-induced embeddings
  (subgraphs isomorphic to the pattern), the default GPM semantics and the
  one pattern decomposition assumes.
* ``count_embeddings(..., induced=True)`` — vertex-induced embeddings.
* Labeled patterns match only vertices with equal labels.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.graph.csr import CSRGraph
from repro.patterns.isomorphism import automorphism_count
from repro.patterns.matching_order import greedy_extension_order
from repro.patterns.pattern import Pattern

__all__ = [
    "count_injective_homomorphisms",
    "count_embeddings",
    "enumerate_embeddings",
]


def _matching_order(pattern: Pattern) -> tuple[int, ...]:
    if pattern.n == 1:
        return (0,)
    first = max(range(pattern.n), key=pattern.degree)
    rest = [v for v in range(pattern.n) if v != first]
    return (first,) + greedy_extension_order(pattern, [first], rest)


def _assignments(
    graph: CSRGraph, pattern: Pattern, induced: bool
) -> Iterator[tuple[int, ...]]:
    """Yield injective maps pattern->graph preserving edges (and, when
    ``induced``, non-edges), as tuples indexed by pattern vertex."""
    order = _matching_order(pattern)
    mapping: dict[int, int] = {}

    def candidates(v: int):
        matched_neighbors = [w for w in pattern.neighbors(v) if w in mapping]
        if matched_neighbors:
            base = graph.neighbors(mapping[matched_neighbors[0]])
            source = (int(x) for x in base)
        else:
            source = range(graph.num_vertices)
        used = set(mapping.values())
        want = pattern.label_of(v)
        for g in source:
            if g in used:
                continue
            if want is not None and graph.label_of(g) != want:
                continue
            if any(
                not graph.has_edge(g, mapping[w]) for w in matched_neighbors[1:]
            ):
                continue
            if induced:
                conflict = False
                for w, gw in mapping.items():
                    if not pattern.has_edge(v, w) and graph.has_edge(g, gw):
                        conflict = True
                        break
                if conflict:
                    continue
            yield g

    def backtrack(i: int) -> Iterator[tuple[int, ...]]:
        if i == len(order):
            yield tuple(mapping[v] for v in range(pattern.n))
            return
        v = order[i]
        for g in candidates(v):
            mapping[v] = g
            yield from backtrack(i + 1)
            del mapping[v]

    yield from backtrack(0)


def count_injective_homomorphisms(
    graph: CSRGraph, pattern: Pattern, induced: bool = False
) -> int:
    """Number of injective (non-)induced homomorphisms pattern -> graph."""
    return sum(1 for _ in _assignments(graph, pattern, induced))


def count_embeddings(
    graph: CSRGraph, pattern: Pattern, induced: bool = False
) -> int:
    """Number of distinct embeddings: injective homs / |Aut(pattern)|."""
    total = count_injective_homomorphisms(graph, pattern, induced)
    aut = automorphism_count(pattern)
    assert total % aut == 0, "injective hom count must divide evenly"
    return total // aut


def enumerate_embeddings(
    graph: CSRGraph,
    pattern: Pattern,
    induced: bool = False,
    callback: Callable[[tuple[int, ...]], None] | None = None,
) -> set | None:
    """Collect distinct embeddings, or stream raw assignments to ``callback``.

    When collecting, the identity of a vertex-induced embedding is its
    vertex set; an edge-induced embedding is identified by its image edge
    set (several distinct subgraphs may share one vertex set — e.g. the
    three 3-chains inside a triangle).  When streaming, every automorphic
    variant of every embedding is passed to ``callback``.
    """
    if callback is not None:
        for assignment in _assignments(graph, pattern, induced):
            callback(assignment)
        return None
    if induced:
        return {
            frozenset(assignment)
            for assignment in _assignments(graph, pattern, induced)
        }
    embeddings = set()
    for assignment in _assignments(graph, pattern, induced):
        edges = frozenset(
            (min(assignment[u], assignment[v]), max(assignment[u], assignment[v]))
            for u, v in pattern.edge_set
        )
        embeddings.add(edges)
    return embeddings
