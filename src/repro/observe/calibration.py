"""Cost-model calibration: prediction-vs-actual recording and reporting.

DecoMine's thesis is that the compiler can *predict* which plan is
cheapest (paper §5, Figure 11).  The calibration recorder keeps that
claim honest on live runs: when enabled, every executed plan logs a
``(plan, per-model cost estimate, measured seconds)`` triple, and
:meth:`CalibrationRecorder.report` reduces the log to a Spearman rank
correlation per cost model — "does ranking plans by predicted cost rank
them by measured time?", exactly the Figure-11 methodology, computed
from whatever executions actually happened.

Enabling it is explicit (estimating a plan under every model costs a few
AST walks per execution)::

    from repro import observe

    recorder = observe.calibrate()
    ...  # run counting workloads through a DecoMine session
    print(observe.calibrate(False).report().render())
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CalibrationRecord",
    "CalibrationRecorder",
    "CalibrationReport",
    "calibrate",
    "calibrating",
    "active_recorder",
    "record_plan_execution",
    "spearman",
]


def _ranks(values) -> np.ndarray:
    """Fractional ranks (ties averaged), the standard Spearman ranking."""
    xs = np.asarray(values, dtype=float)
    order = np.argsort(xs, kind="stable")
    ranks = np.empty(len(xs), dtype=float)
    i = 0
    while i < len(xs):
        j = i
        while j + 1 < len(xs) and xs[order[j + 1]] == xs[order[i]]:
            j += 1
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman(xs, ys) -> float:
    """Spearman rank correlation; NaN when undefined (n < 2 or no
    variance on either side)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) != len(ys):
        raise ValueError("spearman needs equal-length sequences")
    if len(xs) < 2:
        return float("nan")
    rx, ry = _ranks(xs), _ranks(ys)
    if rx.std() == 0 or ry.std() == 0:
        return float("nan")
    return float(np.corrcoef(rx, ry)[0, 1])


@dataclass(frozen=True)
class CalibrationRecord:
    """One executed plan: what each model predicted, what we measured."""

    pattern: str
    plan: str
    selected_model: str
    seconds: float
    estimates: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "pattern": self.pattern,
            "plan": self.plan,
            "selected_model": self.selected_model,
            "seconds": self.seconds,
            "estimates": dict(self.estimates),
        }


@dataclass
class CalibrationReport:
    """Per-model prediction quality over one recorder's records."""

    num_records: int
    spearman: dict[str, float]
    records: list[CalibrationRecord] = field(default_factory=list)

    def to_dict(self, include_records: bool = True) -> dict:
        payload = {
            "num_records": self.num_records,
            "spearman": {
                model: (None if np.isnan(rho) else rho)
                for model, rho in self.spearman.items()
            },
        }
        if include_records:
            payload["records"] = [r.to_dict() for r in self.records]
        return payload

    def to_json(self, indent: int | None = 2,
                include_records: bool = True) -> str:
        return json.dumps(self.to_dict(include_records), indent=indent,
                          sort_keys=True)

    def render(self) -> str:
        lines = [f"calibration: {self.num_records} executed plan(s)"]
        for model in sorted(self.spearman):
            rho = self.spearman[model]
            shown = "n/a" if np.isnan(rho) else f"{rho:+.3f}"
            lines.append(f"  spearman[{model}] = {shown}")
        return "\n".join(lines)


class CalibrationRecorder:
    """Accumulates (plan, estimates, measured seconds) triples."""

    def __init__(self) -> None:
        self.records: list[CalibrationRecord] = []

    def record(self, pattern: str, plan: str, seconds: float,
               estimates: dict[str, float],
               selected_model: str = "") -> None:
        self.records.append(CalibrationRecord(
            pattern=pattern, plan=plan, selected_model=selected_model,
            seconds=float(seconds),
            estimates={k: float(v) for k, v in estimates.items()},
        ))

    def report(self) -> CalibrationReport:
        models = sorted({m for r in self.records for m in r.estimates})
        rhos: dict[str, float] = {}
        for model in models:
            rows = [r for r in self.records if model in r.estimates]
            rhos[model] = spearman(
                [r.estimates[model] for r in rows],
                [r.seconds for r in rows],
            )
        return CalibrationReport(
            num_records=len(self.records),
            spearman=rhos,
            records=list(self.records),
        )


# ----------------------------------------------------------------------
# Process-local recorder hook (fed by DecoMine sessions when active)
# ----------------------------------------------------------------------

_RECORDER: CalibrationRecorder | None = None


def calibrate(on: bool = True) -> CalibrationRecorder | None:
    """Install (``on=True``, returns the fresh recorder) or detach
    (``on=False``, returns the detached recorder) the process recorder."""
    global _RECORDER
    if on:
        _RECORDER = CalibrationRecorder()
        return _RECORDER
    recorder, _RECORDER = _RECORDER, None
    return recorder


def calibrating() -> bool:
    return _RECORDER is not None


def active_recorder() -> CalibrationRecorder | None:
    return _RECORDER


def record_plan_execution(plan, profile, seconds: float) -> None:
    """Log one executed plan under every registered cost model.

    No-op unless a recorder is installed.  Estimates come from
    re-pricing the plan's optimized AST under each model — the same
    quantity the search minimized, so report rankings are comparable
    with compile-time selection.
    """
    if _RECORDER is None:
        return
    from repro.costmodel import MODELS, estimate_cost

    estimates = {
        name: float(estimate_cost(plan.root, profile, model_cls()))
        for name, model_cls in MODELS.items()
    }
    _RECORDER.record(
        pattern=plan.pattern.name or repr(plan.pattern),
        plan=plan.spec.describe(),
        seconds=seconds,
        estimates=estimates,
        selected_model=plan.model_name,
    )
